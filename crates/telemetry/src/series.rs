//! Time-series gauges: periodic per-shard and per-region state snapshots.
//!
//! The engine's state is piecewise-constant between events, so sampling at
//! fixed sim-time boundaries is exact — a row at time `t` reflects every
//! event with timestamp `<= t` and nothing later. Each tick emits one row
//! per shard plus one aggregated row per region; single-region runs still
//! tag rows with region 0 so the column schema never changes shape.

use pascal_sim::SimTime;

/// Whether a row covers one shard or aggregates a whole region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesScope {
    /// One scheduling domain.
    Shard,
    /// A region: the sum/mean over its shards.
    Region,
}

impl SeriesScope {
    /// Stable lowercase key used in the `scope` column.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            SeriesScope::Shard => "shard",
            SeriesScope::Region => "region",
        }
    }
}

/// One gauge snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesRow {
    /// Sample time.
    pub t: SimTime,
    /// Shard- or region-scoped.
    pub scope: SeriesScope,
    /// Region index.
    pub region: u32,
    /// Shard (global id); `None` on region rows.
    pub shard: Option<u32>,
    /// Requests admitted but not yet scheduled onto an instance batch.
    pub queue_depth: u64,
    /// Requests alive in the scope (queued + running + preempted).
    pub active: u64,
    /// Active requests in the reasoning phase.
    pub reasoning: u64,
    /// Active requests in the answering phase.
    pub answering: u64,
    /// GPU KV bytes in use, summed over the scope's instances.
    pub kv_used_bytes: u64,
    /// GPU KV byte capacity, summed over the scope's instances.
    pub kv_capacity_bytes: u64,
    /// Admission budget headroom: limit minus current in-flight KV bytes
    /// (negative at overload). `None` with admission control disabled.
    pub admission_headroom_bytes: Option<i64>,
    /// Mean absolute error of the predictor's reasoning-length estimates
    /// over the samples observed so far. `None` without a predictor (or
    /// before its first estimate).
    pub predictor_mean_abs_error: Option<f64>,
    /// Seconds until the region's WAN port drains its queued transfers
    /// (zero when idle). `None` on shard rows and single-region runs.
    pub wan_busy_s: Option<f64>,
    /// SLO error-budget burn rate over the alert tracker's widest window
    /// (1.0 = spending the budget at exactly the sustainable pace). `None`
    /// without `--alerts`, or before the scope's first completion.
    pub slo_burn: Option<f64>,
}

/// The CSV header, in column order.
const CSV_HEADER: &str = "t_s,scope,region,shard,queue_depth,active,reasoning,answering,\
kv_used_bytes,kv_capacity_bytes,admission_headroom_bytes,predictor_mean_abs_error,wan_busy_s,\
slo_burn";

/// Shortest `f64` representation that round-trips.
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Serializes rows as columnar CSV (empty cells for `None`).
#[must_use]
pub fn series_to_csv(rows: &[SeriesRow]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            fmt_f64(r.t.as_secs_f64()),
            r.scope.key(),
            r.region,
            r.shard.map(|s| s.to_string()).unwrap_or_default(),
            r.queue_depth,
            r.active,
            r.reasoning,
            r.answering,
            r.kv_used_bytes,
            r.kv_capacity_bytes,
            r.admission_headroom_bytes
                .map(|v| v.to_string())
                .unwrap_or_default(),
            r.predictor_mean_abs_error.map(fmt_f64).unwrap_or_default(),
            r.wan_busy_s.map(fmt_f64).unwrap_or_default(),
            r.slo_burn.map(fmt_f64).unwrap_or_default(),
        ));
    }
    out
}

/// Serializes rows as a JSON array of objects (`null` for `None`), with
/// the same fields and order as the CSV columns.
#[must_use]
pub fn series_to_json(rows: &[SeriesRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"t_s\":{},\"scope\":\"{}\",\"region\":{},\"shard\":{},\"queue_depth\":{},\
\"active\":{},\"reasoning\":{},\"answering\":{},\"kv_used_bytes\":{},\"kv_capacity_bytes\":{},\
\"admission_headroom_bytes\":{},\"predictor_mean_abs_error\":{},\"wan_busy_s\":{},\
\"slo_burn\":{}}}",
            fmt_f64(r.t.as_secs_f64()),
            r.scope.key(),
            r.region,
            r.shard
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".to_owned()),
            r.queue_depth,
            r.active,
            r.reasoning,
            r.answering,
            r.kv_used_bytes,
            r.kv_capacity_bytes,
            r.admission_headroom_bytes
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".to_owned()),
            r.predictor_mean_abs_error
                .map(fmt_f64)
                .unwrap_or_else(|| "null".to_owned()),
            r.wan_busy_s
                .map(fmt_f64)
                .unwrap_or_else(|| "null".to_owned()),
            r.slo_burn.map(fmt_f64).unwrap_or_else(|| "null".to_owned()),
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<SeriesRow> {
        vec![
            SeriesRow {
                t: SimTime::from_secs_f64(1.0),
                scope: SeriesScope::Shard,
                region: 0,
                shard: Some(1),
                queue_depth: 3,
                active: 8,
                reasoning: 5,
                answering: 2,
                kv_used_bytes: 1024,
                kv_capacity_bytes: 4096,
                admission_headroom_bytes: Some(-128),
                predictor_mean_abs_error: Some(12.5),
                wan_busy_s: None,
                slo_burn: Some(1.5),
            },
            SeriesRow {
                t: SimTime::from_secs_f64(1.0),
                scope: SeriesScope::Region,
                region: 0,
                shard: None,
                queue_depth: 3,
                active: 8,
                reasoning: 5,
                answering: 2,
                kv_used_bytes: 1024,
                kv_capacity_bytes: 4096,
                admission_headroom_bytes: None,
                predictor_mean_abs_error: None,
                wan_busy_s: Some(0.25),
                slo_burn: None,
            },
        ]
    }

    #[test]
    fn csv_has_header_plus_one_line_per_row() {
        let text = series_to_csv(&sample_rows());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let columns = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
        }
        assert!(lines[1].contains("shard,0,1,3,8,5,2,1024,4096,-128,12.5,,1.5"));
        assert!(lines[2].contains("region,0,,3,8"));
    }

    #[test]
    fn json_uses_null_for_missing_gauges() {
        let text = series_to_json(&sample_rows());
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with("\n]\n"));
        assert!(text.contains("\"shard\":null"));
        assert!(text.contains("\"wan_busy_s\":0.25"));
        assert!(text.contains("\"admission_headroom_bytes\":-128"));
    }

    #[test]
    fn empty_series_serialize_cleanly() {
        assert_eq!(series_to_csv(&[]).lines().count(), 1);
        assert_eq!(series_to_json(&[]), "[\n\n]\n");
    }
}
