//! Quality-of-Experience, the Andes-style metric of §II-C / Fig. 3.
//!
//! QoE compares the *digested*-token curve (what the user has consumed,
//! reading at the target TPOT pace from the token pacer's buffer) with the
//! *expected* curve (tokens arriving exactly on schedule). The score is the
//! ratio of the areas under the two step curves; 1.0 means the user never
//! starved.
//!
//! Two variants are used in the paper:
//!
//! * **Characterization** (Fig. 5): the expected curve starts a target-TTFAT
//!   after the phase transition, so a slow transition also costs QoE.
//! * **Evaluation** (§V-A "Metric"): reasoning lengths are too variable for
//!   a fixed TTFT target, so QoE is computed from TPOT only, starting at the
//!   first answering token; TTFT is reported separately.

use pascal_sim::{SimDuration, SimTime};

use crate::record::RequestRecord;

/// Parameters of the QoE computation.
///
/// # Examples
///
/// ```
/// use pascal_metrics::QoeParams;
///
/// let eval = QoeParams::paper_eval();
/// assert_eq!(eval.target_tpot.as_millis_f64(), 100.0);
/// assert!(eval.target_ttfat.is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QoeParams {
    /// Target time-per-output-token (the user's reading pace).
    pub target_tpot: SimDuration,
    /// Target time from phase transition to the first answering token. When
    /// set, the expected curve starts at `transition + target_ttfat`
    /// (characterization mode); when `None`, it starts at the first actual
    /// answering token (evaluation mode).
    pub target_ttfat: Option<SimDuration>,
}

impl QoeParams {
    /// §V-A evaluation settings: TPOT 100 ms, no TTFAT term.
    #[must_use]
    pub fn paper_eval() -> Self {
        QoeParams {
            target_tpot: SimDuration::from_millis(100),
            target_ttfat: None,
        }
    }

    /// §III characterization settings (after DistServe \[54\]): TTFAT 0.25 s,
    /// TPOT 100 ms.
    #[must_use]
    pub fn characterization() -> Self {
        QoeParams {
            target_tpot: SimDuration::from_millis(100),
            target_ttfat: Some(SimDuration::from_millis(250)),
        }
    }
}

/// QoE of a token stream generated at `gen_times`, against an expected
/// schedule starting at `expected_start` with one token per `tpot`.
///
/// Digestion model (Fig. 3): the pacer buffers bursts; the user consumes at
/// the target pace whenever the buffer is non-empty and starves otherwise.
/// Token `i` is digested at `d_i = max(g_i, d_{i-1} + tpot)` with
/// `d_0 = max(g_0, expected_start)`; it was expected at
/// `e_i = expected_start + i·tpot`. QoE is the ratio of areas under the two
/// cumulative step curves up to the horizon `max(d_n, e_n)`.
///
/// Returns 1.0 for an empty stream (nothing to starve on).
///
/// # Panics
///
/// Panics if `gen_times` is not sorted or `tpot` is zero.
#[must_use]
pub fn qoe_of_stream(gen_times: &[SimTime], expected_start: SimTime, tpot: SimDuration) -> f64 {
    assert!(tpot > SimDuration::ZERO, "tpot must be positive");
    assert!(
        gen_times.windows(2).all(|w| w[0] <= w[1]),
        "token times must be sorted"
    );
    let n = gen_times.len();
    if n == 0 {
        return 1.0;
    }

    let mut digest_times = Vec::with_capacity(n);
    let mut prev: Option<SimTime> = None;
    for (i, &g) in gen_times.iter().enumerate() {
        let pace_ready = match prev {
            None => expected_start,
            Some(p) => p + tpot,
        };
        let d = if g > pace_ready { g } else { pace_ready };
        digest_times.push(d);
        prev = Some(d);
        let _ = i;
    }

    let last_expected = expected_start + tpot * (n as u64 - 1);
    let last_digested = *digest_times.last().expect("n > 0");
    let horizon = last_digested.max(last_expected);

    // Area under a cumulative step curve = Σ (horizon - step_time).
    let digested_area: f64 = digest_times
        .iter()
        .map(|d| horizon.saturating_since(*d).as_secs_f64())
        .sum();
    let expected_area: f64 = (0..n)
        .map(|i| {
            let e = expected_start + tpot * i as u64;
            horizon.saturating_since(e).as_secs_f64()
        })
        .sum();

    if expected_area <= 0.0 {
        // Degenerate single-token case where digestion was exactly on time.
        return 1.0;
    }
    (digested_area / expected_area).clamp(0.0, 1.0)
}

/// QoE of a request's answering phase under `params`.
///
/// Returns `None` for requests with no answering tokens (e.g. the Fig. 4
/// characterization workload) — they have no user-visible stream to score.
#[must_use]
pub fn answering_qoe(record: &RequestRecord, params: &QoeParams) -> Option<f64> {
    let answers = record.answer_token_times();
    if answers.is_empty() {
        return None;
    }
    let expected_start = match params.target_ttfat {
        Some(ttfat) => record.phase_transition_time()? + ttfat,
        None => answers[0],
    };
    Some(qoe_of_stream(answers, expected_start, params.target_tpot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn stream(start: f64, gap: f64, n: usize) -> Vec<SimTime> {
        (0..n).map(|i| secs(start + gap * i as f64)).collect()
    }

    #[test]
    fn on_pace_generation_scores_one() {
        let tokens = stream(0.0, 0.1, 50);
        let qoe = qoe_of_stream(&tokens, secs(0.0), SimDuration::from_millis(100));
        assert!((qoe - 1.0).abs() < 1e-9, "qoe {qoe}");
    }

    #[test]
    fn faster_than_pace_is_still_one() {
        // Burst generation: the pacer buffers, the user reads on schedule.
        let tokens = stream(0.0, 0.01, 50);
        let qoe = qoe_of_stream(&tokens, secs(0.0), SimDuration::from_millis(100));
        assert!((qoe - 1.0).abs() < 1e-9, "qoe {qoe}");
    }

    #[test]
    fn stall_mid_stream_costs_qoe() {
        // 10 on-pace tokens, then a 2 s stall, then 10 more (Fig. 3(iii)).
        let mut tokens = stream(0.0, 0.1, 10);
        tokens.extend(stream(3.0, 0.1, 10));
        let qoe = qoe_of_stream(&tokens, secs(0.0), SimDuration::from_millis(100));
        assert!(qoe < 0.95, "stalled stream should violate: {qoe}");
        assert!(qoe > 0.2, "but not collapse to zero: {qoe}");
    }

    #[test]
    fn slower_pace_generation_degrades_gradually() {
        let on_pace = qoe_of_stream(
            &stream(0.0, 0.1, 50),
            secs(0.0),
            SimDuration::from_millis(100),
        );
        let slow_10 = qoe_of_stream(
            &stream(0.0, 0.11, 50),
            secs(0.0),
            SimDuration::from_millis(100),
        );
        let slow_50 = qoe_of_stream(
            &stream(0.0, 0.15, 50),
            secs(0.0),
            SimDuration::from_millis(100),
        );
        assert!(on_pace > slow_10 && slow_10 > slow_50);
    }

    #[test]
    fn empty_stream_is_perfect() {
        assert_eq!(
            qoe_of_stream(&[], secs(0.0), SimDuration::from_millis(100)),
            1.0
        );
    }

    #[test]
    fn single_on_time_token_is_perfect() {
        let qoe = qoe_of_stream(&[secs(1.0)], secs(1.0), SimDuration::from_millis(100));
        assert_eq!(qoe, 1.0);
    }

    #[test]
    fn ttfat_target_mode_charges_late_transition() {
        use pascal_workload::{RequestId, RequestSpec};
        // Transition at t=1.0; first answer only at t=2.0 (late by 0.75 s
        // against the 0.25 s TTFAT target), then on pace.
        let spec = RequestSpec::new(RequestId(0), secs(0.0), 128, 1, 10);
        let mut token_times = vec![secs(1.0)];
        token_times.extend(stream(2.0, 0.1, 10));
        let record = crate::record::RequestRecord {
            spec,
            token_times,
            completion: secs(2.9),
            executed: SimDuration::from_secs_f64(2.9),
            blocked: SimDuration::ZERO,
            preempted: SimDuration::ZERO,
            num_preemptions: 0,
            answer_resume_time: Some(secs(2.0)),
            migration: None,
            instances_visited: vec![0],
        };
        let eval = answering_qoe(&record, &QoeParams::paper_eval()).unwrap();
        let charac = answering_qoe(&record, &QoeParams::characterization()).unwrap();
        assert!(
            (eval - 1.0).abs() < 1e-9,
            "TPOT-only mode ignores TTFAT: {eval}"
        );
        assert!(charac < 0.9, "characterization mode charges it: {charac}");
    }

    proptest! {
        /// QoE is always within [0, 1].
        #[test]
        fn prop_qoe_bounded(gaps in proptest::collection::vec(0.0f64..1.0, 1..100)) {
            let mut t = 0.0;
            let tokens: Vec<SimTime> = gaps.iter().map(|g| { t += g; secs(t) }).collect();
            let qoe = qoe_of_stream(&tokens, tokens[0], SimDuration::from_millis(100));
            prop_assert!((0.0..=1.0).contains(&qoe));
        }

        /// Delaying every token after the first can never raise QoE.
        #[test]
        fn prop_delay_never_helps(
            n in 2usize..50,
            delay_ms in 1u64..5000,
        ) {
            let base = stream(0.0, 0.1, n);
            let mut delayed = base.clone();
            let extra = SimDuration::from_millis(delay_ms);
            for t in delayed.iter_mut().skip(1) {
                *t += extra;
            }
            let q_base = qoe_of_stream(&base, base[0], SimDuration::from_millis(100));
            let q_delayed = qoe_of_stream(&delayed, delayed[0], SimDuration::from_millis(100));
            prop_assert!(q_delayed <= q_base + 1e-12);
        }
    }
}
