//! Aggregate controller counters emitted once per simulation run.
//!
//! The engine's migration and admission controllers tally every decision
//! they take; the counters land in `SimOutput` so experiments can compare
//! reactive and predictive variants without re-deriving outcomes from the
//! per-request records.

use pascal_sim::{SimDuration, SimTime};
use pascal_workload::RequestId;

/// Outcome tally of the migration controller over one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MigrationOutcomes {
    /// Phase transitions at which a migration decision was evaluated.
    pub considered: u64,
    /// Transfers actually launched onto the fabric.
    pub launched: u64,
    /// Decisions where the policy chose a destination but the predictive
    /// cost/benefit test vetoed it (predicted remaining service did not
    /// justify the transfer cost).
    pub vetoed_by_cost: u64,
    /// Launches aborted because the adaptive controller could not reserve
    /// destination KV blocks at launch time.
    pub aborted_no_reservation: u64,
    /// Transfers whose KV landed in the destination's CPU pool (guaranteed
    /// reload stall — the failure mode of Fig. 7 / Fig. 15).
    pub landed_in_cpu: u64,
    /// Total KV bytes moved across the fabric.
    pub bytes_moved: u64,
    /// Total post-transfer stall time accumulated by migrated requests
    /// (landing → next execution).
    pub total_stall: SimDuration,
    /// Cross-shard escapes evaluated: the home shard was saturated (no
    /// SLO-healthy instance, or none able to hold the request's KV) and a
    /// healthy sibling shard existed. Zero in any single-shard run.
    pub cross_shard_considered: u64,
    /// Escapes vetoed by the predictive cost/benefit test at the
    /// interconnect's (higher) transfer price.
    pub cross_shard_vetoed_by_cost: u64,
    /// Escapes abandoned because no landing instance qualified (or its
    /// reservation failed) on the chosen sibling shard. Every considered
    /// escape resolves: `cross_shard_considered == cross_shard_launched +
    /// cross_shard_vetoed_by_cost + cross_shard_aborted`.
    pub cross_shard_aborted: u64,
    /// Cross-shard transfers actually launched onto the interconnect.
    /// Also counted in [`MigrationOutcomes::launched`].
    pub cross_shard_launched: u64,
    /// KV bytes moved over the inter-shard interconnect. Also counted in
    /// [`MigrationOutcomes::bytes_moved`].
    pub cross_shard_bytes_moved: u64,
    /// Deferred intra-shard fallback moves executed after a cluster- or
    /// federation-level escape failed (no target, cost veto, or abort) —
    /// the escape candidate's original Algorithm 2 destination, launched
    /// late. Zero in any single-shard single-region run.
    pub cross_shard_fallbacks: u64,
    /// The subset of [`MigrationOutcomes::cross_shard_fallbacks`] whose
    /// escape failed specifically on the cost/benefit veto at the pricier
    /// tier — the "the expensive tier said no, the cheap approved move
    /// still happens" path.
    pub cross_shard_fallbacks_after_veto: u64,
    /// Cross-region escapes evaluated: the home region was saturated (no
    /// sibling shard could take the request) and a healthy remote region
    /// existed. Zero in any single-region run.
    pub cross_region_considered: u64,
    /// Cross-region escapes vetoed by the predictive cost/benefit test at
    /// the WAN's (highest) transfer price.
    pub cross_region_vetoed_by_cost: u64,
    /// Cross-region escapes abandoned because no landing shard or instance
    /// qualified (or its reservation failed) in the chosen remote region.
    /// Every considered escape resolves: `cross_region_considered ==
    /// cross_region_launched + cross_region_vetoed_by_cost +
    /// cross_region_aborted`.
    pub cross_region_aborted: u64,
    /// Cross-region transfers actually launched onto the WAN. Also counted
    /// in [`MigrationOutcomes::launched`].
    pub cross_region_launched: u64,
    /// KV bytes moved over the WAN tier. Also counted in
    /// [`MigrationOutcomes::bytes_moved`].
    pub cross_region_bytes_moved: u64,
}

impl MigrationOutcomes {
    /// Decisions where the policy's Algorithm 2 answer was overridden by a
    /// controller (cost veto or failed reservation) — the divergence count
    /// between reactive and predictive operation.
    #[must_use]
    pub fn diverged(&self) -> u64 {
        self.vetoed_by_cost + self.aborted_no_reservation
    }

    /// Debug-asserts the documented escape-resolution invariants: every
    /// considered cross-shard / cross-region escape resolves as exactly one
    /// of launched, vetoed-by-cost or aborted. The engine checks this on
    /// every per-shard tally and on the absorbed run total when assembling
    /// a `SimOutput`; trace events reconcile against the same relation.
    ///
    /// (Not part of [`MigrationOutcomes::absorb`]: that must sum arbitrary
    /// tallies, including synthetic ones that need not balance.)
    pub fn assert_escape_conservation(&self) {
        debug_assert_eq!(
            self.cross_shard_considered,
            self.cross_shard_launched + self.cross_shard_vetoed_by_cost + self.cross_shard_aborted,
            "cross-shard escapes must resolve: considered == launched + vetoed + aborted"
        );
        debug_assert_eq!(
            self.cross_region_considered,
            self.cross_region_launched
                + self.cross_region_vetoed_by_cost
                + self.cross_region_aborted,
            "cross-region escapes must resolve: considered == launched + vetoed + aborted"
        );
    }

    /// Adds another tally into this one — how the cluster aggregates its
    /// per-shard controller outcomes into the run total.
    pub fn absorb(&mut self, other: &MigrationOutcomes) {
        self.considered += other.considered;
        self.launched += other.launched;
        self.vetoed_by_cost += other.vetoed_by_cost;
        self.aborted_no_reservation += other.aborted_no_reservation;
        self.landed_in_cpu += other.landed_in_cpu;
        self.bytes_moved += other.bytes_moved;
        self.total_stall += other.total_stall;
        self.cross_shard_considered += other.cross_shard_considered;
        self.cross_shard_vetoed_by_cost += other.cross_shard_vetoed_by_cost;
        self.cross_shard_aborted += other.cross_shard_aborted;
        self.cross_shard_launched += other.cross_shard_launched;
        self.cross_shard_bytes_moved += other.cross_shard_bytes_moved;
        self.cross_shard_fallbacks += other.cross_shard_fallbacks;
        self.cross_shard_fallbacks_after_veto += other.cross_shard_fallbacks_after_veto;
        self.cross_region_considered += other.cross_region_considered;
        self.cross_region_vetoed_by_cost += other.cross_region_vetoed_by_cost;
        self.cross_region_aborted += other.cross_region_aborted;
        self.cross_region_launched += other.cross_region_launched;
        self.cross_region_bytes_moved += other.cross_region_bytes_moved;
    }
}

/// Fleet-elasticity tally over one run: what the fault-injection layer did
/// to the fleet and what the engine did in response. All-zero for any run
/// without a fleet-event schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FleetOutcomes {
    /// Health transitions applied to instances (joins + drains + fails,
    /// including per-instance expansions of shard/region events).
    pub transitions: u64,
    /// Instances brought (back) up.
    pub joins: u64,
    /// Instances taken down abruptly (fail-stop, no drain).
    pub fails: u64,
    /// Planned drains initiated.
    pub drains_started: u64,
    /// Drains that ran to completion (membership empty → down).
    pub drains_completed: u64,
    /// Summed drain durations (initiation → completion) over completed
    /// drains.
    pub drain_time: SimDuration,
    /// Requests lost to an abrupt outage: their instance went down while
    /// they were resident or running, and no migration could save them.
    pub stranded: u64,
    /// Queued (never-prefilled) requests the water-filling rebalancer
    /// re-placed onto surviving instances after an outage or drain.
    pub rebalanced: u64,
    /// Autoscaler scale-up actions (standby instance activations).
    pub autoscale_up: u64,
    /// Autoscaler scale-down actions (drains of managed instances).
    pub autoscale_down: u64,
}

impl FleetOutcomes {
    /// Mean drain completion time in seconds (zero when no drain finished).
    #[must_use]
    pub fn mean_drain_completion_s(&self) -> f64 {
        if self.drains_completed == 0 {
            0.0
        } else {
            self.drain_time.as_secs_f64() / self.drains_completed as f64
        }
    }

    /// Total autoscaler actions (scale-ups plus scale-downs).
    #[must_use]
    pub fn autoscale_actions(&self) -> u64 {
        self.autoscale_up + self.autoscale_down
    }

    /// Adds another tally into this one (per-shard → run aggregation).
    pub fn absorb(&mut self, other: &FleetOutcomes) {
        self.transitions += other.transitions;
        self.joins += other.joins;
        self.fails += other.fails;
        self.drains_started += other.drains_started;
        self.drains_completed += other.drains_completed;
        self.drain_time += other.drain_time;
        self.stranded += other.stranded;
        self.rebalanced += other.rebalanced;
        self.autoscale_up += other.autoscale_up;
        self.autoscale_down += other.autoscale_down;
    }
}

/// Admission-control tally over one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdmissionCounters {
    /// Arrivals admitted into the cluster.
    pub admitted: u64,
    /// Arrivals rejected at predicted overload.
    pub rejected: u64,
    /// Arrivals this pool would have rejected that the federation placed
    /// in a remote region instead (spill-before-reject). Counted at the
    /// *home* pool; the landing pool counts the same arrival as admitted,
    /// so `admitted + rejected` still totals the arrivals across pools.
    pub spilled: u64,
}

impl AdmissionCounters {
    /// Fraction of arrivals rejected (zero when nothing arrived).
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.rejected as f64 / total as f64
        }
    }

    /// Adds another tally into this one (per-shard → cluster aggregation).
    pub fn absorb(&mut self, other: &AdmissionCounters) {
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.spilled += other.spilled;
    }
}

/// Per-shard row of a sharded run: what one scheduling domain did.
///
/// A single-shard run emits exactly one row covering the whole pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShardStats {
    /// Shard index.
    pub shard: u32,
    /// Instances in this scheduling domain.
    pub instances: usize,
    /// Arrivals the router pinned to this shard.
    pub routed_arrivals: u64,
    /// Requests that completed on this shard (after any migrations).
    pub completed: u64,
    /// Peak GPU KV bytes summed over the shard's instances.
    pub peak_gpu_kv_bytes: u64,
    /// The shard's migration-controller tally; its `cross_shard_*`
    /// counters cover escapes *out of* this shard.
    pub migrations: MigrationOutcomes,
    /// The shard's admission-controller tally.
    pub admission: AdmissionCounters,
    /// Requests that migrated into this shard over the interconnect.
    pub cross_shard_in: u64,
    /// Requests that migrated into this shard over the WAN (federated
    /// runs only; zero in any single-region run).
    pub cross_region_in: u64,
    /// The shard's fleet-elasticity tally (all-zero without a fleet-event
    /// schedule).
    pub fleet: FleetOutcomes,
}

/// Per-region row of a federated run: what one region (a whole
/// cluster-of-shards) did at the federation boundary.
///
/// A single-region run emits exactly one row covering the whole cluster.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RegionStats {
    /// Region index.
    pub region: u32,
    /// Scheduling domains (shards) inside the region.
    pub shards: usize,
    /// Instances inside the region.
    pub instances: usize,
    /// Arrivals that *originated* in this region (the user's geography).
    pub origin_arrivals: u64,
    /// Arrivals the federation router delivered here (after routing and
    /// spill), summed over the region's shards.
    pub routed_arrivals: u64,
    /// Delivered arrivals whose origin was a different region — the WAN
    /// detour traffic the `static` policy never produces.
    pub nonlocal_arrivals: u64,
    /// Arrivals this region's admission would have rejected that spilled
    /// to a remote region instead.
    pub spill_out: u64,
    /// Spilled arrivals from other regions this region absorbed.
    pub spill_in: u64,
    /// Requests that completed in this region (after any migrations).
    pub completed: u64,
    /// Cross-region escape migrations launched out of this region.
    pub cross_region_out: u64,
    /// Requests that migrated into this region over the WAN.
    pub cross_region_in: u64,
    /// The region's admission tally, summed over its shards.
    pub admission: AdmissionCounters,
}

/// One arrival the admission controller turned away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdmissionRecord {
    /// The rejected request.
    pub id: RequestId,
    /// When the rejection happened (the arrival time).
    pub at: SimTime,
    /// Cluster-wide KV bytes (in-flight current + predicted growth + the
    /// incoming request's predicted final footprint) at decision time.
    pub projected_kv_bytes: u64,
    /// The byte budget the projection was tested against.
    pub budget_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_rate_handles_empty_and_mixed() {
        assert_eq!(AdmissionCounters::default().rejection_rate(), 0.0);
        let c = AdmissionCounters {
            admitted: 3,
            rejected: 1,
            spilled: 0,
        };
        assert!((c.rejection_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn diverged_sums_overrides() {
        let m = MigrationOutcomes {
            considered: 10,
            launched: 5,
            vetoed_by_cost: 3,
            aborted_no_reservation: 2,
            ..MigrationOutcomes::default()
        };
        assert_eq!(m.diverged(), 5);
    }

    #[test]
    fn escape_conservation_accepts_balanced_tallies() {
        MigrationOutcomes::default().assert_escape_conservation();
        let m = MigrationOutcomes {
            cross_shard_considered: 3,
            cross_shard_launched: 1,
            cross_shard_vetoed_by_cost: 1,
            cross_shard_aborted: 1,
            cross_region_considered: 2,
            cross_region_launched: 1,
            cross_region_vetoed_by_cost: 1,
            ..MigrationOutcomes::default()
        };
        m.assert_escape_conservation();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "cross-shard escapes must resolve")]
    fn escape_conservation_rejects_unbalanced_tallies() {
        let m = MigrationOutcomes {
            cross_shard_considered: 2,
            cross_shard_launched: 1,
            ..MigrationOutcomes::default()
        };
        m.assert_escape_conservation();
    }

    #[test]
    fn absorb_sums_every_field() {
        let one = MigrationOutcomes {
            considered: 3,
            launched: 2,
            vetoed_by_cost: 1,
            aborted_no_reservation: 1,
            landed_in_cpu: 1,
            bytes_moved: 100,
            total_stall: SimDuration::from_millis(5),
            cross_shard_considered: 2,
            cross_shard_vetoed_by_cost: 1,
            cross_shard_aborted: 1,
            cross_shard_launched: 1,
            cross_shard_bytes_moved: 40,
            cross_shard_fallbacks: 1,
            cross_shard_fallbacks_after_veto: 1,
            cross_region_considered: 3,
            cross_region_vetoed_by_cost: 1,
            cross_region_aborted: 1,
            cross_region_launched: 1,
            cross_region_bytes_moved: 25,
        };
        let mut total = one;
        total.absorb(&one);
        assert_eq!(total.considered, 6);
        assert_eq!(total.launched, 4);
        assert_eq!(total.bytes_moved, 200);
        assert_eq!(total.total_stall, SimDuration::from_millis(10));
        assert_eq!(total.cross_shard_considered, 4);
        assert_eq!(total.cross_shard_aborted, 2);
        assert_eq!(total.cross_shard_launched, 2);
        assert_eq!(total.cross_shard_bytes_moved, 80);
        assert_eq!(total.cross_shard_fallbacks, 2);
        assert_eq!(total.cross_shard_fallbacks_after_veto, 2);
        assert_eq!(total.cross_region_considered, 6);
        assert_eq!(total.cross_region_vetoed_by_cost, 2);
        assert_eq!(total.cross_region_aborted, 2);
        assert_eq!(total.cross_region_launched, 2);
        assert_eq!(total.cross_region_bytes_moved, 50);

        let mut adm = AdmissionCounters {
            admitted: 4,
            rejected: 1,
            spilled: 2,
        };
        adm.absorb(&AdmissionCounters {
            admitted: 6,
            rejected: 2,
            spilled: 1,
        });
        assert_eq!((adm.admitted, adm.rejected, adm.spilled), (10, 3, 3));
    }

    #[test]
    fn fleet_outcomes_absorb_and_derive() {
        let one = FleetOutcomes {
            transitions: 4,
            joins: 1,
            fails: 2,
            drains_started: 2,
            drains_completed: 1,
            drain_time: SimDuration::from_secs(3),
            stranded: 5,
            rebalanced: 7,
            autoscale_up: 2,
            autoscale_down: 1,
        };
        assert!((one.mean_drain_completion_s() - 3.0).abs() < 1e-12);
        assert_eq!(one.autoscale_actions(), 3);
        let mut total = one;
        total.absorb(&one);
        assert_eq!(total.transitions, 8);
        assert_eq!(total.joins, 2);
        assert_eq!(total.fails, 4);
        assert_eq!(total.drains_started, 4);
        assert_eq!(total.drains_completed, 2);
        assert_eq!(total.drain_time, SimDuration::from_secs(6));
        assert_eq!(total.stranded, 10);
        assert_eq!(total.rebalanced, 14);
        assert_eq!(total.autoscale_actions(), 6);
        assert!((total.mean_drain_completion_s() - 3.0).abs() < 1e-12);
        assert_eq!(FleetOutcomes::default().mean_drain_completion_s(), 0.0);
    }
}
