//! Aggregate controller counters emitted once per simulation run.
//!
//! The engine's migration and admission controllers tally every decision
//! they take; the counters land in `SimOutput` so experiments can compare
//! reactive and predictive variants without re-deriving outcomes from the
//! per-request records.

use pascal_sim::{SimDuration, SimTime};
use pascal_workload::RequestId;

/// Outcome tally of the migration controller over one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MigrationOutcomes {
    /// Phase transitions at which a migration decision was evaluated.
    pub considered: u64,
    /// Transfers actually launched onto the fabric.
    pub launched: u64,
    /// Decisions where the policy chose a destination but the predictive
    /// cost/benefit test vetoed it (predicted remaining service did not
    /// justify the transfer cost).
    pub vetoed_by_cost: u64,
    /// Launches aborted because the adaptive controller could not reserve
    /// destination KV blocks at launch time.
    pub aborted_no_reservation: u64,
    /// Transfers whose KV landed in the destination's CPU pool (guaranteed
    /// reload stall — the failure mode of Fig. 7 / Fig. 15).
    pub landed_in_cpu: u64,
    /// Total KV bytes moved across the fabric.
    pub bytes_moved: u64,
    /// Total post-transfer stall time accumulated by migrated requests
    /// (landing → next execution).
    pub total_stall: SimDuration,
}

impl MigrationOutcomes {
    /// Decisions where the policy's Algorithm 2 answer was overridden by a
    /// controller (cost veto or failed reservation) — the divergence count
    /// between reactive and predictive operation.
    #[must_use]
    pub fn diverged(&self) -> u64 {
        self.vetoed_by_cost + self.aborted_no_reservation
    }
}

/// Admission-control tally over one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdmissionCounters {
    /// Arrivals admitted into the cluster.
    pub admitted: u64,
    /// Arrivals rejected at predicted overload.
    pub rejected: u64,
}

impl AdmissionCounters {
    /// Fraction of arrivals rejected (zero when nothing arrived).
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.rejected as f64 / total as f64
        }
    }
}

/// One arrival the admission controller turned away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdmissionRecord {
    /// The rejected request.
    pub id: RequestId,
    /// When the rejection happened (the arrival time).
    pub at: SimTime,
    /// Cluster-wide KV bytes (in-flight current + predicted growth + the
    /// incoming request's predicted final footprint) at decision time.
    pub projected_kv_bytes: u64,
    /// The byte budget the projection was tested against.
    pub budget_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_rate_handles_empty_and_mixed() {
        assert_eq!(AdmissionCounters::default().rejection_rate(), 0.0);
        let c = AdmissionCounters {
            admitted: 3,
            rejected: 1,
        };
        assert!((c.rejection_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn diverged_sums_overrides() {
        let m = MigrationOutcomes {
            considered: 10,
            launched: 5,
            vetoed_by_cost: 3,
            aborted_no_reservation: 2,
            ..MigrationOutcomes::default()
        };
        assert_eq!(m.diverged(), 5);
    }
}
