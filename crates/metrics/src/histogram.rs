//! Fixed-width histograms with density normalization and a terminal
//! renderer — used to regenerate the token-distribution figures
//! (Fig. 8, Fig. 14).

/// A fixed-bin-width histogram over non-negative samples.
///
/// # Examples
///
/// ```
/// use pascal_metrics::Histogram;
///
/// let h = Histogram::from_samples(&[1.0, 2.0, 300.0, 305.0], 100.0);
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin_count(0), 2);
/// assert_eq!(h.bin_count(3), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    sum_sq: f64,
}

impl Histogram {
    /// Builds a histogram from samples with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not strictly positive or any sample is
    /// negative/NaN.
    #[must_use]
    pub fn from_samples(samples: &[f64], bin_width: f64) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin_width must be positive, got {bin_width}"
        );
        let mut h = Histogram {
            bin_width,
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
            sum_sq: 0.0,
        };
        for &s in samples {
            h.add(s);
        }
        h
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is negative or NaN.
    pub fn add(&mut self, sample: f64) {
        assert!(
            sample.is_finite() && sample >= 0.0,
            "histogram samples must be finite and non-negative, got {sample}"
        );
        let bin = (sample / self.bin_width) as usize;
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
        self.total += 1;
        self.sum += sample;
        self.sum_sq += sample * sample;
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of bins (up to the highest occupied one).
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw count of bin `i`.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Probability density of bin `i` (integrates to 1 over all bins).
    #[must_use]
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.bin_count(i) as f64 / (self.total as f64 * self.bin_width)
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`), linearly interpolated
    /// inside the containing bin; zero for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.total as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if next as f64 >= target {
                let within = ((target - cumulative as f64) / c as f64).clamp(0.0, 1.0);
                return (i as f64 + within) * self.bin_width;
            }
            cumulative = next;
        }
        self.counts.len() as f64 * self.bin_width
    }

    /// Sample standard deviation (population form).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        let mean = self.sum / n;
        (self.sum_sq / n - mean * mean).max(0.0).sqrt()
    }

    /// Renders the histogram as ASCII rows (`lo..hi | bar count`), scaling
    /// the tallest bin to `width` characters. Bins past `max_bins` are
    /// collapsed into a final overflow row.
    #[must_use]
    pub fn render_ascii(&self, width: usize, max_bins: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        let shown = self.counts.len().min(max_bins);
        for (i, &c) in self.counts.iter().take(shown).enumerate() {
            let bar_len = (c as f64 / peak as f64 * width as f64).round() as usize;
            let lo = i as f64 * self.bin_width;
            let hi = lo + self.bin_width;
            out.push_str(&format!(
                "{:>7.0}-{:<7.0} |{:<width$}| {}\n",
                lo,
                hi,
                "#".repeat(bar_len),
                c,
                width = width
            ));
        }
        if self.counts.len() > shown {
            let rest: u64 = self.counts[shown..].iter().sum();
            out.push_str(&format!("{:>7}+{:<8}| (overflow) {}\n", "", "", rest));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std_match_direct_computation() {
        let samples = [1.0, 2.0, 3.0, 4.0, 10.0];
        let h = Histogram::from_samples(&samples, 1.0);
        assert!((h.mean() - 4.0).abs() < 1e-9);
        let var = samples.iter().map(|x| (x - 4.0) * (x - 4.0)).sum::<f64>() / 5.0;
        assert!((h.std_dev() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::from_samples(&[], 10.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.density(3), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(!h.render_ascii(20, 10).contains('#'));
    }

    #[test]
    fn quantiles_interpolate_within_bins() {
        let samples: Vec<f64> = (0..100).map(f64::from).collect();
        let h = Histogram::from_samples(&samples, 1.0);
        assert!((h.quantile(0.5) - 50.0).abs() <= 1.0, "{}", h.quantile(0.5));
        assert!((h.quantile(0.99) - 99.0).abs() <= 1.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 100.0);
        // Out-of-range inputs clamp rather than extrapolate.
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        // A single-bin histogram interpolates inside that bin.
        let one = Histogram::from_samples(&[5.0, 5.1, 5.2], 10.0);
        let q = one.quantile(0.5);
        assert!((0.0..=10.0).contains(&q), "{q}");
    }

    #[test]
    fn ascii_render_scales_to_peak() {
        let h = Histogram::from_samples(&[0.5, 0.5, 0.5, 1.5], 1.0);
        let s = h.render_ascii(10, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("##########"), "peak bin full width: {s}");
    }

    #[test]
    fn overflow_row_collapses_tail() {
        let h = Histogram::from_samples(&[0.0, 100.0, 200.0, 300.0], 1.0);
        let s = h.render_ascii(10, 2);
        assert!(s.contains("overflow"), "{s}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sample_rejected() {
        let _ = Histogram::from_samples(&[-1.0], 1.0);
    }

    proptest! {
        /// Density always integrates to ~1 for non-empty histograms.
        #[test]
        fn prop_density_normalized(
            samples in proptest::collection::vec(0.0f64..1e4, 1..500),
            bin_width in 1.0f64..500.0,
        ) {
            let h = Histogram::from_samples(&samples, bin_width);
            let integral: f64 = (0..h.num_bins()).map(|i| h.density(i) * bin_width).sum();
            prop_assert!((integral - 1.0).abs() < 1e-9);
        }

        /// Counts are conserved.
        #[test]
        fn prop_counts_conserved(samples in proptest::collection::vec(0.0f64..1e4, 0..500)) {
            let h = Histogram::from_samples(&samples, 50.0);
            let total: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
            prop_assert_eq!(total, samples.len() as u64);
        }
    }
}
