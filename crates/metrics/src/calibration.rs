//! Prediction-calibration reporting: how wrong was the length predictor?
//!
//! The engine logs one [`PredictionSample`] per request when a predictor is
//! active — the estimate the scheduler acted on at *arrival* next to the
//! actual lengths known at completion. [`CalibrationReport`] condenses the
//! samples into coverage plus absolute/relative error quantiles, the
//! standard way length-prediction papers present estimator quality.

use pascal_workload::RequestId;

use crate::tail::percentile;

/// One predicted-vs-actual pair, captured when a request arrived.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PredictionSample {
    /// The request the prediction was made for.
    pub id: RequestId,
    /// Predicted total reasoning tokens at arrival (`None` when the
    /// predictor could not estimate — cold start or rank-only predictors).
    pub predicted_reasoning_tokens: Option<f64>,
    /// Actual reasoning tokens the request generated.
    pub actual_reasoning_tokens: u32,
    /// Predicted total output tokens at arrival, when available.
    pub predicted_total_tokens: Option<f64>,
    /// Actual total output tokens.
    pub actual_total_tokens: u32,
}

impl PredictionSample {
    /// Absolute reasoning-length error in tokens, if a prediction existed.
    #[must_use]
    pub fn abs_error(&self) -> Option<f64> {
        self.predicted_reasoning_tokens
            .map(|p| (p - f64::from(self.actual_reasoning_tokens)).abs())
    }

    /// Relative reasoning-length error (absolute error over actual).
    #[must_use]
    pub fn rel_error(&self) -> Option<f64> {
        self.abs_error()
            .map(|e| e / f64::from(self.actual_reasoning_tokens.max(1)))
    }
}

/// Error quantiles of a predictor over one run.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CalibrationReport {
    /// Total samples (requests served under the predictor).
    pub samples: usize,
    /// Samples for which the predictor produced an absolute estimate.
    pub covered: usize,
    /// Mean absolute reasoning-length error over covered samples, tokens.
    pub mean_abs_error: f64,
    /// p50 / p90 / p99 of the absolute reasoning-length error, tokens.
    pub abs_error_p50: f64,
    /// See [`Self::abs_error_p50`].
    pub abs_error_p90: f64,
    /// See [`Self::abs_error_p50`].
    pub abs_error_p99: f64,
    /// p50 / p90 / p99 of the relative reasoning-length error.
    pub rel_error_p50: f64,
    /// See [`Self::rel_error_p50`].
    pub rel_error_p90: f64,
    /// See [`Self::rel_error_p50`].
    pub rel_error_p99: f64,
}

impl CalibrationReport {
    /// Builds the report; `None` when no sample carries an absolute
    /// estimate (rank-only predictors, or no predictor at all).
    #[must_use]
    pub fn from_samples(samples: &[PredictionSample]) -> Option<Self> {
        let mut abs: Vec<f64> = samples
            .iter()
            .filter_map(PredictionSample::abs_error)
            .collect();
        if abs.is_empty() {
            return None;
        }
        let mut rel: Vec<f64> = samples
            .iter()
            .filter_map(PredictionSample::rel_error)
            .collect();
        abs.sort_by(f64::total_cmp);
        rel.sort_by(f64::total_cmp);
        Some(CalibrationReport {
            samples: samples.len(),
            covered: abs.len(),
            mean_abs_error: abs.iter().sum::<f64>() / abs.len() as f64,
            abs_error_p50: percentile(&abs, 50.0),
            abs_error_p90: percentile(&abs, 90.0),
            abs_error_p99: percentile(&abs, 99.0),
            rel_error_p50: percentile(&rel, 50.0),
            rel_error_p90: percentile(&rel, 90.0),
            rel_error_p99: percentile(&rel, 99.0),
        })
    }

    /// Fraction of samples the predictor covered with absolute estimates.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.covered as f64 / self.samples as f64
        }
    }
}

impl std::fmt::Display for CalibrationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "coverage {:.0}% ({}/{}), |err| mean {:.0} p50 {:.0} p90 {:.0} p99 {:.0} tok, \
             rel err p50 {:.2} p90 {:.2} p99 {:.2}",
            100.0 * self.coverage(),
            self.covered,
            self.samples,
            self.mean_abs_error,
            self.abs_error_p50,
            self.abs_error_p90,
            self.abs_error_p99,
            self.rel_error_p50,
            self.rel_error_p90,
            self.rel_error_p99,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64, predicted: Option<f64>, actual: u32) -> PredictionSample {
        PredictionSample {
            id: RequestId(id),
            predicted_reasoning_tokens: predicted,
            actual_reasoning_tokens: actual,
            predicted_total_tokens: predicted,
            actual_total_tokens: actual,
        }
    }

    #[test]
    fn perfect_predictions_have_zero_error() {
        let samples: Vec<PredictionSample> = (0..50)
            .map(|i| sample(i, Some(f64::from(i as u32 * 10 + 1)), i as u32 * 10 + 1))
            .collect();
        let report = CalibrationReport::from_samples(&samples).expect("covered");
        assert_eq!(report.covered, 50);
        assert_eq!(report.mean_abs_error, 0.0);
        assert_eq!(report.abs_error_p99, 0.0);
        assert_eq!(report.rel_error_p99, 0.0);
        assert!((report.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncovered_samples_are_counted_but_not_scored() {
        let samples = vec![
            sample(0, Some(110.0), 100),
            sample(1, None, 500),
            sample(2, Some(90.0), 100),
        ];
        let report = CalibrationReport::from_samples(&samples).expect("covered");
        assert_eq!(report.samples, 3);
        assert_eq!(report.covered, 2);
        assert!((report.mean_abs_error - 10.0).abs() < 1e-12);
        assert!((report.rel_error_p50 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn all_unknown_yields_none() {
        let samples = vec![sample(0, None, 10), sample(1, None, 20)];
        assert!(CalibrationReport::from_samples(&samples).is_none());
        assert!(CalibrationReport::from_samples(&[]).is_none());
    }

    #[test]
    fn display_is_reasonable() {
        let samples = vec![sample(0, Some(120.0), 100)];
        let report = CalibrationReport::from_samples(&samples).expect("covered");
        let s = report.to_string();
        assert!(s.contains("coverage 100%"), "{s}");
        assert!(s.contains("p99 20"), "{s}");
    }
}
