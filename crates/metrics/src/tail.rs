//! Percentiles and the paper's adaptive tail-TTFT binning (Fig. 10 caption).
//!
//! Requests are grouped into 256-token bins by reasoning length. Because the
//! length distribution is highly skewed, the paper reports a different tail
//! statistic per bin depending on how many samples landed in it: maximum for
//! <10 samples, P90 for <20, P95 for <100, P99 otherwise — and omits bins
//! with fewer than five samples.

/// Linear-interpolation percentile of `sorted` values, `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `sorted` is empty, unsorted, or `p` is out of range.
///
/// # Examples
///
/// ```
/// use pascal_metrics::percentile;
///
/// let xs = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 100.0), 4.0);
/// assert_eq!(percentile(&xs, 50.0), 2.5);
/// ```
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile input must be sorted"
    );
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Which statistic the adaptive rule picked for a bin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TailStat {
    /// Maximum (bins with fewer than 10 samples).
    Max,
    /// 90th percentile (fewer than 20 samples).
    P90,
    /// 95th percentile (fewer than 100 samples).
    P95,
    /// 99th percentile (100 samples or more).
    P99,
}

impl std::fmt::Display for TailStat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailStat::Max => f.write_str("max"),
            TailStat::P90 => f.write_str("P90"),
            TailStat::P95 => f.write_str("P95"),
            TailStat::P99 => f.write_str("P99"),
        }
    }
}

/// Tail statistic of one reasoning-length bin.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BinTail {
    /// Inclusive lower edge of the bin (tokens).
    pub bin_lo: u32,
    /// Exclusive upper edge of the bin (tokens).
    pub bin_hi: u32,
    /// Number of samples in the bin.
    pub count: usize,
    /// Which statistic the adaptive rule used.
    pub stat: TailStat,
    /// The tail value (same unit as the input values).
    pub value: f64,
}

/// Applies the Fig. 10 adaptive rule to one bin's samples. Returns `None`
/// for bins with fewer than five samples ("statistically less meaningful").
#[must_use]
pub fn adaptive_tail(samples: &mut [f64]) -> Option<(TailStat, f64)> {
    let n = samples.len();
    if n < 5 {
        return None;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("tail samples must not be NaN"));
    let (stat, p) = if n < 10 {
        (TailStat::Max, 100.0)
    } else if n < 20 {
        (TailStat::P90, 90.0)
    } else if n < 100 {
        (TailStat::P95, 95.0)
    } else {
        (TailStat::P99, 99.0)
    };
    Some((stat, percentile(samples, p)))
}

/// Bins `(reasoning_tokens, value)` pairs into `bin_width`-token bins and
/// applies the adaptive tail rule to each (Fig. 10, Fig. 13(a), Fig. 16(b)).
///
/// Returned bins are sorted by lower edge; omitted bins are skipped.
///
/// # Panics
///
/// Panics if `bin_width` is zero.
#[must_use]
pub fn tail_by_token_bins(
    points: impl IntoIterator<Item = (u32, f64)>,
    bin_width: u32,
) -> Vec<BinTail> {
    assert!(bin_width > 0, "bin_width must be non-zero");
    let mut bins: std::collections::BTreeMap<u32, Vec<f64>> = std::collections::BTreeMap::new();
    for (tokens, value) in points {
        bins.entry(tokens / bin_width).or_default().push(value);
    }
    bins.into_iter()
        .filter_map(|(bin, mut samples)| {
            let count = samples.len();
            adaptive_tail(&mut samples).map(|(stat, value)| BinTail {
                bin_lo: bin * bin_width,
                bin_hi: (bin + 1) * bin_width,
                count,
                stat,
                value,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentile_interpolates() {
        let xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 25.0), 20.0);
        assert_eq!(percentile(&xs, 90.0), 46.0);
    }

    #[test]
    fn adaptive_rule_thresholds() {
        let mk = |n: usize| (0..n).map(|i| i as f64).collect::<Vec<_>>();
        assert_eq!(adaptive_tail(&mut mk(4)), None);
        assert_eq!(adaptive_tail(&mut mk(5)).unwrap().0, TailStat::Max);
        assert_eq!(adaptive_tail(&mut mk(9)).unwrap().0, TailStat::Max);
        assert_eq!(adaptive_tail(&mut mk(10)).unwrap().0, TailStat::P90);
        assert_eq!(adaptive_tail(&mut mk(19)).unwrap().0, TailStat::P90);
        assert_eq!(adaptive_tail(&mut mk(20)).unwrap().0, TailStat::P95);
        assert_eq!(adaptive_tail(&mut mk(99)).unwrap().0, TailStat::P95);
        assert_eq!(adaptive_tail(&mut mk(100)).unwrap().0, TailStat::P99);
    }

    #[test]
    fn max_rule_returns_maximum() {
        let mut xs = vec![3.0, 9.0, 1.0, 7.0, 5.0];
        let (stat, v) = adaptive_tail(&mut xs).unwrap();
        assert_eq!(stat, TailStat::Max);
        assert_eq!(v, 9.0);
    }

    #[test]
    fn binning_groups_by_reasoning_length() {
        // 6 points in bin [0,256), 5 in bin [256,512), 3 in [512,768) (omitted).
        let points = vec![
            (10, 1.0),
            (100, 2.0),
            (200, 3.0),
            (250, 4.0),
            (255, 5.0),
            (128, 6.0),
            (256, 1.0),
            (300, 2.0),
            (400, 3.0),
            (500, 4.0),
            (511, 5.0),
            (512, 1.0),
            (600, 2.0),
            (700, 3.0),
        ];
        let bins = tail_by_token_bins(points, 256);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].bin_lo, 0);
        assert_eq!(bins[0].count, 6);
        assert_eq!(bins[0].stat, TailStat::Max);
        assert_eq!(bins[0].value, 6.0);
        assert_eq!(bins[1].bin_lo, 256);
        assert_eq!(bins[1].count, 5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn display_stat_labels() {
        assert_eq!(TailStat::Max.to_string(), "max");
        assert_eq!(TailStat::P99.to_string(), "P99");
    }

    proptest! {
        /// Percentiles are monotone in p and bounded by min/max.
        #[test]
        fn prop_percentile_monotone(
            mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let v_lo = percentile(&xs, lo);
            let v_hi = percentile(&xs, hi);
            prop_assert!(v_lo <= v_hi + 1e-9);
            prop_assert!(v_lo >= xs[0] - 1e-9);
            prop_assert!(v_hi <= xs[xs.len() - 1] + 1e-9);
        }

        /// The adaptive tail is never below the median and never above max.
        #[test]
        fn prop_adaptive_tail_in_upper_half(
            xs in proptest::collection::vec(0.0f64..1e6, 5..300),
        ) {
            let mut samples = xs.clone();
            let (_, v) = adaptive_tail(&mut samples).unwrap();
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(v >= percentile(&sorted, 50.0) - 1e-9);
            prop_assert!(v <= sorted[sorted.len() - 1] + 1e-9);
        }
    }
}
