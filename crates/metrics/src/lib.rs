//! # pascal-metrics — user-experience metrics for reasoning-LLM serving
//!
//! Implements every metric the paper reports:
//!
//! * [`RequestRecord`] — per-request timestamps and wait-time decomposition
//!   emitted by the serving engine;
//! * TTFT / TTFAT / reasoning & answering latency / blocking latency as
//!   methods on the record (Fig. 1(b), Fig. 13(c));
//! * [`qoe_of_stream`] / [`answering_qoe`] — the Andes-style
//!   Quality-of-Experience score (Fig. 3), in both the characterization
//!   (TTFAT-target) and evaluation (TPOT-only) variants;
//! * [`slo_violation_rate`] (QoE < 0.95, Fig. 11),
//!   [`throughput_tokens_per_s`] (Fig. 12), [`LatencySummary`]
//!   (Fig. 15(c)) and [`PhaseBreakdown`] (Fig. 4 / Fig. 5);
//! * [`percentile`] / [`tail_by_token_bins`] — the adaptive tail-TTFT
//!   binning of Fig. 10;
//! * [`Histogram`] — density histograms for the token-distribution figures
//!   (Fig. 8, Fig. 14);
//! * [`PredictionSample`] / [`CalibrationReport`] — predicted-vs-actual
//!   length-prediction error quantiles for the `pascal-predict` subsystem;
//! * [`MigrationOutcomes`] / [`AdmissionCounters`] / [`AdmissionRecord`] —
//!   per-run decision tallies of the engine's migration and admission
//!   controllers;
//! * [`SweepCellMetrics`] — the per-cell aggregation row of the scenario
//!   sweep (TTFT quantiles, SLO rate, controller counters) consumed by the
//!   sweep reports and the CI perf-regression gate.
//!
//! # Examples
//!
//! Scoring a paced token stream:
//!
//! ```
//! use pascal_metrics::qoe_of_stream;
//! use pascal_sim::{SimDuration, SimTime};
//!
//! // 20 tokens generated every 100 ms — exactly the target pace.
//! let times: Vec<SimTime> = (0..20)
//!     .map(|i| SimTime::from_secs_f64(0.1 * i as f64))
//!     .collect();
//! let qoe = qoe_of_stream(&times, times[0], SimDuration::from_millis(100));
//! assert!((qoe - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibration;
mod counters;
mod histogram;
mod qoe;
mod record;
mod summary;
mod sweep;
mod tail;

pub use calibration::{CalibrationReport, PredictionSample};
pub use counters::{
    AdmissionCounters, AdmissionRecord, FleetOutcomes, MigrationOutcomes, RegionStats, ShardStats,
};
pub use histogram::Histogram;
pub use qoe::{answering_qoe, qoe_of_stream, QoeParams};
pub use record::{MigrationRecord, RequestRecord};
pub use summary::{
    breakdown_by, cdf_points, goodput_requests_per_s, slo_violation_rate, throughput_tokens_per_s,
    LatencySummary, PhaseBreakdown, SLO_QOE_THRESHOLD,
};
pub use sweep::SweepCellMetrics;
pub use tail::{adaptive_tail, percentile, tail_by_token_bins, BinTail, TailStat};
