//! Per-request measurement records.
//!
//! The serving engine emits one [`RequestRecord`] per completed request,
//! holding every timestamp the paper's metrics need: token generation times,
//! the phase boundary, wait-time decomposition (executed / blocked /
//! preempted, as in Fig. 4/5), migration details (§V-C) and the
//! post-transition scheduling gap ("blocking latency", Fig. 13(c)).

use pascal_sim::{SimDuration, SimTime};
use pascal_workload::RequestSpec;

/// One KV-cache migration performed at a phase boundary (§IV-B).
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MigrationRecord {
    /// Source instance index.
    pub from_instance: u32,
    /// Destination instance index.
    pub to_instance: u32,
    /// When the transfer entered the fabric queue.
    pub started: SimTime,
    /// When the KV cache finished landing on the destination.
    pub finished: SimTime,
    /// Bytes moved.
    pub bytes: u64,
    /// Gap between the KV landing on the destination and the request's next
    /// execution there — the stall the adaptive/predictive controllers try
    /// to minimize. `None` if the request never ran again.
    pub stall: Option<SimDuration>,
    /// Output tokens the migration controller *predicted* the request still
    /// had to generate at decision time (`None` without a length predictor,
    /// or when it could not produce an absolute estimate).
    pub predicted_remaining_tokens: Option<f64>,
    /// Output tokens the request actually still had to generate at decision
    /// time — paired with the prediction, this measures the calibration of
    /// the migration cost/benefit model.
    pub actual_remaining_tokens: u32,
}

impl MigrationRecord {
    /// End-to-end transfer latency including fabric queueing.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.started)
    }

    /// Absolute error of the remaining-service prediction at decision time,
    /// in tokens. `None` when no prediction was recorded.
    #[must_use]
    pub fn remaining_tokens_error(&self) -> Option<f64> {
        self.predicted_remaining_tokens
            .map(|p| (p - f64::from(self.actual_remaining_tokens)).abs())
    }
}

/// Complete measurement record of one served request.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestRecord {
    /// The request as specified in the trace.
    pub spec: RequestSpec,
    /// Generation time of every output token, reasoning tokens first.
    /// `token_times[spec.reasoning_tokens - 1]` is the phase-boundary token.
    pub token_times: Vec<SimTime>,
    /// When the request finished (last token generated, KV freed).
    pub completion: SimTime,
    /// Time spent inside running iterations (prefill or decode).
    pub executed: SimDuration,
    /// Wait time before the request ever ran (admission queueing, §II-B).
    pub blocked: SimDuration,
    /// Wait time after first execution while suspended (offload, reload,
    /// migration stalls, iteration exclusion).
    pub preempted: SimDuration,
    /// Number of preemption events (evictions from GPU memory).
    pub num_preemptions: u32,
    /// First time the request ran inside a batch *after* its phase
    /// transition; `None` if it never transitioned or never resumed.
    pub answer_resume_time: Option<SimTime>,
    /// Migration performed at the phase boundary, if any.
    pub migration: Option<MigrationRecord>,
    /// Instances the request executed on, in visit order.
    pub instances_visited: Vec<u32>,
}

impl RequestRecord {
    /// Validates internal consistency (token counts and ordering).
    ///
    /// # Panics
    ///
    /// Panics if the record is malformed; used by the engine's debug
    /// assertions and the integration tests.
    pub fn assert_consistent(&self) {
        assert_eq!(
            self.token_times.len(),
            self.spec.output_tokens() as usize,
            "{}: token count mismatch",
            self.spec.id
        );
        assert!(
            self.token_times.windows(2).all(|w| w[0] <= w[1]),
            "{}: token times must be non-decreasing",
            self.spec.id
        );
        if let Some(last) = self.token_times.last() {
            assert!(
                *last <= self.completion,
                "{}: completion precedes last token",
                self.spec.id
            );
        }
        assert!(
            self.token_times
                .first()
                .is_none_or(|t| *t >= self.spec.arrival),
            "{}: token generated before arrival",
            self.spec.id
        );
    }

    /// When the request left the reasoning phase: the generation time of the
    /// boundary token for cold requests, or arrival for warm ones. `None`
    /// while malformed (no tokens at all).
    #[must_use]
    pub fn phase_transition_time(&self) -> Option<SimTime> {
        if self.spec.warm_start || self.spec.reasoning_tokens == 0 {
            return Some(self.spec.arrival);
        }
        self.token_times
            .get(self.spec.reasoning_tokens as usize - 1)
            .copied()
    }

    /// Generation time of the first user-visible (answering) token.
    #[must_use]
    pub fn first_answer_time(&self) -> Option<SimTime> {
        if self.spec.answering_tokens == 0 {
            return None;
        }
        self.token_times
            .get(self.spec.reasoning_tokens as usize)
            .copied()
    }

    /// Time-To-First-Token as the paper defines it for reasoning LLMs
    /// (Fig. 1(b)): submission → first *answering* token.
    #[must_use]
    pub fn ttft(&self) -> Option<SimDuration> {
        self.first_answer_time()
            .map(|t| t.saturating_since(self.spec.arrival))
    }

    /// Reasoning-phase latency: submission → boundary token (includes
    /// prefill, queueing and any preemption — Fig. 4's quantity).
    #[must_use]
    pub fn reasoning_latency(&self) -> Option<SimDuration> {
        if self.spec.warm_start || self.spec.reasoning_tokens == 0 {
            return None;
        }
        self.phase_transition_time()
            .map(|t| t.saturating_since(self.spec.arrival))
    }

    /// Answering-phase latency: phase transition → completion (Fig. 5's
    /// quantity).
    #[must_use]
    pub fn answering_latency(&self) -> Option<SimDuration> {
        if self.spec.answering_tokens == 0 {
            return None;
        }
        self.phase_transition_time()
            .map(|t| self.completion.saturating_since(t))
    }

    /// Time-To-First-Answering-Token: phase transition → first answering
    /// token (§III, Fig. 5 caption).
    #[must_use]
    pub fn ttfat(&self) -> Option<SimDuration> {
        match (self.phase_transition_time(), self.first_answer_time()) {
            (Some(t0), Some(t1)) => Some(t1.saturating_since(t0)),
            _ => None,
        }
    }

    /// Blocking latency (Fig. 13(c)): phase transition → first time the
    /// request was scheduled again.
    #[must_use]
    pub fn blocking_latency(&self) -> Option<SimDuration> {
        match (self.phase_transition_time(), self.answer_resume_time) {
            (Some(t0), Some(t1)) => Some(t1.saturating_since(t0)),
            _ => None,
        }
    }

    /// End-to-end latency: submission → completion.
    #[must_use]
    pub fn e2e_latency(&self) -> SimDuration {
        self.completion.saturating_since(self.spec.arrival)
    }

    /// Generation times of the answering tokens only.
    #[must_use]
    pub fn answer_token_times(&self) -> &[SimTime] {
        &self.token_times[self.spec.reasoning_tokens as usize..]
    }

    /// Total time the record accounts for (executed + blocked + preempted);
    /// should equal end-to-end latency up to the engine's bookkeeping
    /// granularity.
    #[must_use]
    pub fn accounted_time(&self) -> SimDuration {
        self.executed + self.blocked + self.preempted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_workload::RequestId;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    /// A hand-built record: 128 prompt, 3 reasoning, 2 answering tokens.
    fn sample() -> RequestRecord {
        let spec = RequestSpec::new(RequestId(0), secs(1.0), 128, 3, 2);
        RequestRecord {
            spec,
            token_times: vec![secs(2.0), secs(2.1), secs(2.2), secs(3.0), secs(3.1)],
            completion: secs(3.1),
            executed: SimDuration::from_secs_f64(1.0),
            blocked: SimDuration::from_secs_f64(0.8),
            preempted: SimDuration::from_secs_f64(0.3),
            num_preemptions: 1,
            answer_resume_time: Some(secs(2.9)),
            migration: None,
            instances_visited: vec![0],
        }
    }

    #[test]
    fn derived_latencies() {
        let r = sample();
        r.assert_consistent();
        assert_eq!(r.phase_transition_time(), Some(secs(2.2)));
        assert_eq!(r.first_answer_time(), Some(secs(3.0)));
        assert_eq!(r.ttft().unwrap().as_secs_f64(), 2.0);
        assert!((r.reasoning_latency().unwrap().as_secs_f64() - 1.2).abs() < 1e-9);
        assert!((r.answering_latency().unwrap().as_secs_f64() - 0.9).abs() < 1e-9);
        assert!((r.ttfat().unwrap().as_secs_f64() - 0.8).abs() < 1e-9);
        assert!((r.blocking_latency().unwrap().as_secs_f64() - 0.7).abs() < 1e-9);
        assert!((r.e2e_latency().as_secs_f64() - 2.1).abs() < 1e-9);
    }

    #[test]
    fn reasoning_only_request_has_no_answer_metrics() {
        let spec = RequestSpec::new(RequestId(1), secs(0.0), 128, 2, 0);
        let r = RequestRecord {
            spec,
            token_times: vec![secs(1.0), secs(2.0)],
            completion: secs(2.0),
            executed: SimDuration::from_secs_f64(2.0),
            blocked: SimDuration::ZERO,
            preempted: SimDuration::ZERO,
            num_preemptions: 0,
            answer_resume_time: None,
            migration: None,
            instances_visited: vec![0],
        };
        r.assert_consistent();
        assert_eq!(r.ttft(), None);
        assert_eq!(r.answering_latency(), None);
        assert_eq!(r.reasoning_latency().unwrap().as_secs_f64(), 2.0);
    }

    #[test]
    fn warm_request_transitions_at_arrival() {
        let spec = RequestSpec::warm(RequestId(2), secs(5.0), 128, 2);
        let r = RequestRecord {
            spec,
            token_times: vec![secs(6.0), secs(6.1)],
            completion: secs(6.1),
            executed: SimDuration::from_secs_f64(0.2),
            blocked: SimDuration::from_secs_f64(0.9),
            preempted: SimDuration::ZERO,
            num_preemptions: 0,
            answer_resume_time: Some(secs(5.9)),
            migration: None,
            instances_visited: vec![3],
        };
        r.assert_consistent();
        assert_eq!(r.phase_transition_time(), Some(secs(5.0)));
        assert_eq!(r.ttfat().unwrap().as_secs_f64(), 1.0);
        assert_eq!(r.ttft().unwrap().as_secs_f64(), 1.0);
    }

    #[test]
    fn migration_latency() {
        let m = MigrationRecord {
            from_instance: 0,
            to_instance: 2,
            started: secs(1.0),
            finished: secs(1.25),
            bytes: 512 << 20,
            stall: Some(SimDuration::from_secs_f64(0.05)),
            predicted_remaining_tokens: Some(110.0),
            actual_remaining_tokens: 100,
        };
        assert!((m.latency().as_secs_f64() - 0.25).abs() < 1e-9);
        assert!((m.remaining_tokens_error().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn remaining_error_absent_without_prediction() {
        let m = MigrationRecord {
            from_instance: 0,
            to_instance: 1,
            started: secs(1.0),
            finished: secs(1.1),
            bytes: 1,
            stall: None,
            predicted_remaining_tokens: None,
            actual_remaining_tokens: 42,
        };
        assert_eq!(m.remaining_tokens_error(), None);
    }

    #[test]
    #[should_panic(expected = "token count mismatch")]
    fn consistency_checks_token_count() {
        let mut r = sample();
        r.token_times.pop();
        r.assert_consistent();
    }

    #[test]
    fn accounted_time_sums_components() {
        let r = sample();
        assert!((r.accounted_time().as_secs_f64() - 2.1).abs() < 1e-9);
    }
}
