//! Aggregate metrics: SLO violation rates (Fig. 11), serving throughput
//! (Fig. 12), latency summaries (Fig. 15(c)) and phase-latency breakdowns
//! (Fig. 4 / Fig. 5).

use std::collections::BTreeMap;

use pascal_sim::SimDuration;

use crate::qoe::{answering_qoe, QoeParams};
use crate::record::RequestRecord;
use crate::tail::percentile;

/// The paper's SLO threshold: a request violates if its QoE drops below
/// 0.95 (§III-A, §V-A).
pub const SLO_QOE_THRESHOLD: f64 = 0.95;

/// Fraction of answering-capable requests whose QoE falls below
/// `threshold`. Requests without answering tokens are excluded.
///
/// # Examples
///
/// ```
/// use pascal_metrics::{slo_violation_rate, QoeParams, SLO_QOE_THRESHOLD};
///
/// let rate = slo_violation_rate(&[], &QoeParams::paper_eval(), SLO_QOE_THRESHOLD);
/// assert_eq!(rate, 0.0);
/// ```
#[must_use]
pub fn slo_violation_rate(records: &[RequestRecord], params: &QoeParams, threshold: f64) -> f64 {
    let mut considered = 0usize;
    let mut violated = 0usize;
    for r in records {
        if let Some(qoe) = answering_qoe(r, params) {
            considered += 1;
            if qoe < threshold {
                violated += 1;
            }
        }
    }
    if considered == 0 {
        0.0
    } else {
        violated as f64 / considered as f64
    }
}

/// Serving throughput as the paper measures it (Fig. 12): total generated
/// tokens (reasoning + answering) divided by the makespan from first arrival
/// to last completion.
#[must_use]
pub fn throughput_tokens_per_s(records: &[RequestRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let total_tokens: u64 = records
        .iter()
        .map(|r| u64::from(r.spec.output_tokens()))
        .sum();
    let first_arrival = records
        .iter()
        .map(|r| r.spec.arrival)
        .min()
        .expect("non-empty");
    let last_completion = records
        .iter()
        .map(|r| r.completion)
        .max()
        .expect("non-empty");
    let span = last_completion
        .saturating_since(first_arrival)
        .as_secs_f64();
    if span <= 0.0 {
        return 0.0;
    }
    total_tokens as f64 / span
}

/// Mean / median / tail summary of a latency population (seconds).
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (P50).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencySummary {
    /// Summarizes a set of values; returns `None` when empty.
    #[must_use]
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Option<Self> {
        let mut xs: Vec<f64> = values.into_iter().collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("latencies must not be NaN"));
        let count = xs.len();
        let mean = xs.iter().sum::<f64>() / count as f64;
        Some(LatencySummary {
            count,
            mean,
            p50: percentile(&xs, 50.0),
            p99: percentile(&xs, 99.0),
            max: xs[count - 1],
        })
    }
}

/// Mean wall-time decomposition of a request population: actively executing
/// vs. waiting before first execution (blocked) vs. suspended afterwards
/// (preempted) — the stacked bars of Fig. 4 and Fig. 5(a).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhaseBreakdown {
    /// Samples aggregated.
    pub count: usize,
    /// Mean executed seconds.
    pub executed_s: f64,
    /// Mean blocked-wait seconds.
    pub blocked_s: f64,
    /// Mean preempted-wait seconds.
    pub preempted_s: f64,
}

impl PhaseBreakdown {
    /// Mean total latency (sum of the three components).
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.executed_s + self.blocked_s + self.preempted_s
    }

    /// Aggregates records into a breakdown.
    #[must_use]
    pub fn of(records: impl IntoIterator<Item = (SimDuration, SimDuration, SimDuration)>) -> Self {
        let mut sum = PhaseBreakdown::default();
        for (exec, blocked, preempted) in records {
            sum.count += 1;
            sum.executed_s += exec.as_secs_f64();
            sum.blocked_s += blocked.as_secs_f64();
            sum.preempted_s += preempted.as_secs_f64();
        }
        if sum.count > 0 {
            let n = sum.count as f64;
            sum.executed_s /= n;
            sum.blocked_s /= n;
            sum.preempted_s /= n;
        }
        sum
    }
}

/// Groups records by a key (e.g. reasoning token count) and computes each
/// group's [`PhaseBreakdown`] — the x-axis grouping of Fig. 4 / Fig. 5.
#[must_use]
pub fn breakdown_by<K: Ord + Copy>(
    records: &[RequestRecord],
    key: impl Fn(&RequestRecord) -> K,
) -> BTreeMap<K, PhaseBreakdown> {
    let mut groups: BTreeMap<K, Vec<(SimDuration, SimDuration, SimDuration)>> = BTreeMap::new();
    for r in records {
        groups
            .entry(key(r))
            .or_default()
            .push((r.executed, r.blocked, r.preempted));
    }
    groups
        .into_iter()
        .map(|(k, v)| (k, PhaseBreakdown::of(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_sim::SimTime;
    use pascal_workload::{RequestId, RequestSpec};

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    /// A request that streams its answers with a controllable stall.
    fn record_with_stall(id: u64, stall_s: f64) -> RequestRecord {
        let spec = RequestSpec::new(RequestId(id), secs(0.0), 128, 1, 20);
        let mut token_times = vec![secs(1.0)];
        let mut t = 1.1;
        for i in 0..20 {
            if i == 10 {
                t += stall_s;
            }
            token_times.push(secs(t));
            t += 0.1;
        }
        let completion = *token_times.last().unwrap();
        RequestRecord {
            spec,
            token_times,
            completion,
            executed: SimDuration::from_secs_f64(1.0),
            blocked: SimDuration::from_secs_f64(0.5),
            preempted: SimDuration::from_secs_f64(stall_s),
            num_preemptions: u32::from(stall_s > 0.0),
            answer_resume_time: Some(secs(1.1)),
            migration: None,
            instances_visited: vec![0],
        }
    }

    #[test]
    fn violation_rate_counts_stalls() {
        let records = vec![
            record_with_stall(0, 0.0),
            record_with_stall(1, 5.0),
            record_with_stall(2, 0.0),
            record_with_stall(3, 4.0),
        ];
        let rate = slo_violation_rate(&records, &QoeParams::paper_eval(), SLO_QOE_THRESHOLD);
        assert!((rate - 0.5).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn throughput_counts_all_output_tokens() {
        let records = vec![record_with_stall(0, 0.0)];
        // 21 tokens over [0, completion].
        let expected = 21.0 / records[0].completion.as_secs_f64();
        let got = throughput_tokens_per_s(&records);
        assert!((got - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_population_is_quiet() {
        assert_eq!(throughput_tokens_per_s(&[]), 0.0);
        assert_eq!(
            slo_violation_rate(&[], &QoeParams::paper_eval(), SLO_QOE_THRESHOLD),
            0.0
        );
        assert_eq!(LatencySummary::from_values(std::iter::empty()), None);
    }

    #[test]
    fn latency_summary_stats() {
        let s = LatencySummary::from_values((1..=100).map(f64::from)).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!(s.p99 > 98.0 && s.p99 <= 100.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn breakdown_means_components() {
        let records = vec![record_with_stall(0, 0.0), record_with_stall(1, 2.0)];
        let groups = breakdown_by(&records, |r| r.spec.answering_tokens);
        let b = groups[&20];
        assert_eq!(b.count, 2);
        assert!((b.executed_s - 1.0).abs() < 1e-9);
        assert!((b.blocked_s - 0.5).abs() < 1e-9);
        assert!((b.preempted_s - 1.0).abs() < 1e-9);
        assert!((b.total_s() - 2.5).abs() < 1e-9);
    }
}

/// Goodput: SLO-satisfying requests completed per second over the makespan
/// — the operator-facing counterpart of [`throughput_tokens_per_s`].
#[must_use]
pub fn goodput_requests_per_s(
    records: &[RequestRecord],
    params: &QoeParams,
    threshold: f64,
) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let good = records
        .iter()
        .filter(|r| answering_qoe(r, params).is_none_or(|q| q >= threshold))
        .count();
    let first_arrival = records
        .iter()
        .map(|r| r.spec.arrival)
        .min()
        .expect("non-empty");
    let last_completion = records
        .iter()
        .map(|r| r.completion)
        .max()
        .expect("non-empty");
    let span = last_completion
        .saturating_since(first_arrival)
        .as_secs_f64();
    if span <= 0.0 {
        0.0
    } else {
        good as f64 / span
    }
}

/// Empirical CDF of a latency population, down-sampled to at most
/// `max_points` evenly spaced quantiles — ready for plotting TTFT
/// distributions like Fig. 15(a).
///
/// Returns `(value, cumulative_fraction)` pairs in ascending order.
#[must_use]
pub fn cdf_points(values: impl IntoIterator<Item = f64>, max_points: usize) -> Vec<(f64, f64)> {
    let mut xs: Vec<f64> = values.into_iter().collect();
    if xs.is_empty() || max_points == 0 {
        return Vec::new();
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("CDF values must not be NaN"));
    let n = xs.len();
    let points = max_points.min(n);
    (1..=points)
        .map(|i| {
            let frac = i as f64 / points as f64;
            let idx = ((frac * n as f64).ceil() as usize).clamp(1, n) - 1;
            (xs[idx], (idx + 1) as f64 / n as f64)
        })
        .collect()
}

#[cfg(test)]
mod goodput_tests {
    use super::*;
    use pascal_sim::SimTime;
    use pascal_workload::{RequestId, RequestSpec};

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn on_pace_record(id: u64, arrival: f64) -> RequestRecord {
        let spec = RequestSpec::new(RequestId(id), secs(arrival), 64, 1, 10);
        let mut token_times = vec![secs(arrival + 1.0)];
        for i in 0..10 {
            token_times.push(secs(arrival + 1.1 + 0.1 * f64::from(i)));
        }
        let completion = *token_times.last().unwrap();
        RequestRecord {
            spec,
            token_times,
            completion,
            executed: SimDuration::from_secs_f64(2.0),
            blocked: SimDuration::ZERO,
            preempted: SimDuration::ZERO,
            num_preemptions: 0,
            answer_resume_time: Some(secs(arrival + 1.1)),
            migration: None,
            instances_visited: vec![0],
        }
    }

    #[test]
    fn goodput_counts_slo_satisfying_completions() {
        let records: Vec<RequestRecord> = (0..10).map(|i| on_pace_record(i, i as f64)).collect();
        let g = goodput_requests_per_s(&records, &QoeParams::paper_eval(), SLO_QOE_THRESHOLD);
        let span = records.last().unwrap().completion.as_secs_f64();
        assert!((g - 10.0 / span).abs() < 1e-9);
    }

    #[test]
    fn goodput_of_empty_population_is_zero() {
        assert_eq!(
            goodput_requests_per_s(&[], &QoeParams::paper_eval(), SLO_QOE_THRESHOLD),
            0.0
        );
    }

    #[test]
    fn cdf_points_are_monotone_and_end_at_one() {
        let values = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let cdf = cdf_points(values, 10);
        assert_eq!(cdf.len(), 5);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cdf.last().unwrap(), &(5.0, 1.0));
    }

    #[test]
    fn cdf_downsamples_large_populations() {
        let values: Vec<f64> = (0..10_000).map(f64::from).collect();
        let cdf = cdf_points(values, 50);
        assert_eq!(cdf.len(), 50);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_of_empty_is_empty() {
        assert!(cdf_points(std::iter::empty(), 10).is_empty());
    }
}
