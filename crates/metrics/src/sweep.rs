//! Per-cell aggregation rows for scenario sweeps.
//!
//! A sweep cell runs one full simulation; [`SweepCellMetrics`] condenses
//! its output into the fixed set of numbers the sweep reports (JSON/CSV)
//! and the CI perf-regression gate compare: TTFT quantiles, SLO violation
//! rate, throughput/goodput, and the migration/admission controller
//! counters. Keeping the row here (next to [`RequestRecord`]) lets every
//! consumer — experiments, CLI, gate — agree on one definition of each
//! number.

use crate::counters::{AdmissionCounters, FleetOutcomes, MigrationOutcomes};
use crate::qoe::{answering_qoe, QoeParams};
use crate::record::RequestRecord;
use crate::summary::{
    goodput_requests_per_s, slo_violation_rate, throughput_tokens_per_s, LatencySummary,
    SLO_QOE_THRESHOLD,
};

/// The aggregate metrics of one sweep cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepCellMetrics {
    /// Completed requests in the cell.
    pub requests: usize,
    /// Mean TTFT in seconds (`None` when nothing answered).
    pub ttft_mean_s: Option<f64>,
    /// Median TTFT in seconds.
    pub ttft_p50_s: Option<f64>,
    /// P99 TTFT in seconds — the gate's latency metric.
    pub ttft_p99_s: Option<f64>,
    /// Fraction of answering requests with QoE below the SLO threshold —
    /// the gate's SLO metric.
    pub slo_violation_rate: f64,
    /// Mean answering-phase QoE (paper-eval parameters).
    pub mean_qoe: f64,
    /// Serving throughput in generated tokens per second.
    pub throughput_tokens_per_s: f64,
    /// SLO-satisfying completions per second.
    pub goodput_rps: f64,
    /// First arrival → last completion, in seconds.
    pub makespan_s: f64,
    /// Migration decisions evaluated at phase boundaries.
    pub migrations_considered: u64,
    /// Migrations launched onto the fabric.
    pub migrations_launched: u64,
    /// Migrations vetoed by the predictive cost/benefit test.
    pub migrations_vetoed: u64,
    /// Migrations that crossed shards over the interconnect (also counted
    /// in `migrations_launched`). Zero in single-shard cells.
    pub migrations_cross_shard: u64,
    /// Migrations that crossed regions over the WAN (also counted in
    /// `migrations_launched`). Zero in single-region cells.
    pub migrations_cross_region: u64,
    /// Migrations whose KV landed in destination CPU memory.
    pub migrations_landed_in_cpu: u64,
    /// Arrivals admitted by the admission controller.
    pub admission_admitted: u64,
    /// Arrivals rejected at predicted overload.
    pub admission_rejected: u64,
    /// Arrivals spilled to a remote region instead of being rejected.
    pub admission_spilled: u64,
    /// Requests stranded by fleet outages (zero without a fleet schedule).
    pub requests_stranded: u64,
    /// Mean drain completion time in seconds (zero when no drain finished).
    pub drain_completion_s: f64,
    /// Queued requests re-placed by the water-filling rebalancer.
    pub rebalance_moves: u64,
    /// Autoscaler actions taken (scale-ups plus scale-downs).
    pub autoscale_actions: u64,
}

impl SweepCellMetrics {
    /// Condenses one run's outputs into a sweep row. `makespan_s` is the
    /// run's makespan in seconds; QoE-derived numbers use `qoe`.
    #[must_use]
    pub fn from_run(
        records: &[RequestRecord],
        migration: &MigrationOutcomes,
        admission: &AdmissionCounters,
        fleet: &FleetOutcomes,
        makespan_s: f64,
        qoe: &QoeParams,
    ) -> Self {
        let ttft = LatencySummary::from_values(
            records
                .iter()
                .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
        );
        let qoes: Vec<f64> = records
            .iter()
            .filter_map(|r| answering_qoe(r, qoe))
            .collect();
        let mean_qoe = if qoes.is_empty() {
            0.0
        } else {
            qoes.iter().sum::<f64>() / qoes.len() as f64
        };
        SweepCellMetrics {
            requests: records.len(),
            ttft_mean_s: ttft.as_ref().map(|t| t.mean),
            ttft_p50_s: ttft.as_ref().map(|t| t.p50),
            ttft_p99_s: ttft.as_ref().map(|t| t.p99),
            slo_violation_rate: slo_violation_rate(records, qoe, SLO_QOE_THRESHOLD),
            mean_qoe,
            throughput_tokens_per_s: throughput_tokens_per_s(records),
            goodput_rps: goodput_requests_per_s(records, qoe, SLO_QOE_THRESHOLD),
            makespan_s,
            migrations_considered: migration.considered,
            migrations_launched: migration.launched,
            migrations_vetoed: migration.vetoed_by_cost,
            migrations_cross_shard: migration.cross_shard_launched,
            migrations_cross_region: migration.cross_region_launched,
            migrations_landed_in_cpu: migration.landed_in_cpu,
            admission_admitted: admission.admitted,
            admission_rejected: admission.rejected,
            admission_spilled: admission.spilled,
            requests_stranded: fleet.stranded,
            drain_completion_s: fleet.mean_drain_completion_s(),
            rebalance_moves: fleet.rebalanced,
            autoscale_actions: fleet.autoscale_actions(),
        }
    }

    /// Fraction of arrivals rejected by admission control.
    #[must_use]
    pub fn admission_rejection_rate(&self) -> f64 {
        AdmissionCounters {
            admitted: self.admission_admitted,
            rejected: self.admission_rejected,
            spilled: self.admission_spilled,
        }
        .rejection_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_run_produces_zeroed_row() {
        let row = SweepCellMetrics::from_run(
            &[],
            &MigrationOutcomes::default(),
            &AdmissionCounters::default(),
            &FleetOutcomes::default(),
            0.0,
            &QoeParams::paper_eval(),
        );
        assert_eq!(row.requests, 0);
        assert_eq!(row.ttft_p99_s, None);
        assert_eq!(row.slo_violation_rate, 0.0);
        assert_eq!(row.admission_rejection_rate(), 0.0);
        assert_eq!(row.requests_stranded, 0);
        assert_eq!(row.drain_completion_s, 0.0);
        assert_eq!(row.rebalance_moves, 0);
        assert_eq!(row.autoscale_actions, 0);
    }

    #[test]
    fn counters_are_copied_through() {
        let migration = MigrationOutcomes {
            considered: 10,
            launched: 6,
            vetoed_by_cost: 3,
            landed_in_cpu: 1,
            cross_shard_launched: 2,
            cross_region_launched: 1,
            ..MigrationOutcomes::default()
        };
        let admission = AdmissionCounters {
            admitted: 9,
            rejected: 3,
            spilled: 2,
        };
        let fleet = FleetOutcomes {
            stranded: 4,
            drains_completed: 2,
            drain_time: pascal_sim::SimDuration::from_secs(5),
            rebalanced: 6,
            autoscale_up: 1,
            autoscale_down: 2,
            ..FleetOutcomes::default()
        };
        let row = SweepCellMetrics::from_run(
            &[],
            &migration,
            &admission,
            &fleet,
            12.5,
            &QoeParams::paper_eval(),
        );
        assert_eq!(row.migrations_considered, 10);
        assert_eq!(row.migrations_launched, 6);
        assert_eq!(row.migrations_vetoed, 3);
        assert_eq!(row.migrations_cross_shard, 2);
        assert_eq!(row.migrations_cross_region, 1);
        assert_eq!(row.migrations_landed_in_cpu, 1);
        assert_eq!(row.admission_admitted, 9);
        assert_eq!(row.admission_rejected, 3);
        assert_eq!(row.admission_spilled, 2);
        assert!((row.admission_rejection_rate() - 0.25).abs() < 1e-12);
        assert!((row.makespan_s - 12.5).abs() < 1e-12);
        assert_eq!(row.requests_stranded, 4);
        assert!((row.drain_completion_s - 2.5).abs() < 1e-12);
        assert_eq!(row.rebalance_moves, 6);
        assert_eq!(row.autoscale_actions, 3);
    }
}
