//! Offline drop-in shim for the subset of [proptest](https://docs.rs/proptest)
//! this workspace's tests use.
//!
//! The workspace builds without a registry, so the real crate cannot be
//! vendored. This shim keeps the seed test suites source-compatible:
//! `proptest! { fn name(x in strategy, ...) { ... } }` blocks run each body
//! over a fixed number of generated cases (64 by default, overridable with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), with inputs drawn
//! from a deterministic per-test RNG — reruns are bit-identical, never
//! flaky. No shrinking is performed; failures report the case index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic generator backing all strategies — a thin wrapper around
/// `pascal_sim::SimRng` (one PRNG implementation in the workspace, not
/// two) seeded from the test's name.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: pascal_sim::SimRng,
}

impl TestRng {
    /// Seeds from an arbitrary byte string (e.g. the test name).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives the 64-bit seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: pascal_sim::SimRng::seed_from(h),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.uniform_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.uniform_range(0, n - 1)
    }
}

/// A value generator, the shim's analogue of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end as u64 - self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_uint_range!(u32, u64);

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

/// Full-domain strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the full domain of `T` (supported: `u64`, `bool`).
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test-run configuration (`with_cases` is the only knob).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Overrides the number of cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Asserts a condition inside a `proptest!` body, aborting the case with a
/// formatted error instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                ::std::stringify!($a),
                ::std::stringify!($b),
                left,
                right
            ));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    (
        @impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($p:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(::std::concat!(
                    ::std::module_path!(), "::", ::std::stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $p = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        ::std::panic!("property failed at case {case}: {message}");
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Everything a `use proptest::prelude::*;` expects.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let u = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&u));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let v = collection::vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, tuples, prop_assert forms.
        #[test]
        fn macro_smoke(x in 1u64..100, (flag, y) in (any::<bool>(), 0u32..10), mut v in collection::vec(0.0f64..1.0, 1..4)) {
            v.push(0.5);
            prop_assert!((1..100).contains(&x));
            prop_assert!(y < 10, "y was {y}");
            prop_assert_eq!(flag, flag);
            prop_assert!(v.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }
}
