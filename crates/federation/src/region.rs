//! Region descriptors and region-aware admission helpers.
//!
//! A [`RegionSpec`] describes one region: a cluster-of-shards with its own
//! instance pool sizing (the engine gives each region its own two-tier
//! topology and folds its event clock under the one global clock). A
//! [`FederationSpec`] is the whole deployment: the regions plus the
//! [`WanLink`](crate::WanLink) class connecting them.
//!
//! [`spill_order`] is the admission side of region awareness: when a
//! region's SLO budget would reject an arrival, the federation tries the
//! remote regions in this order *before* turning the user away.

use pascal_cluster::PoolSnapshot;

use crate::policy::ring_distance;
use crate::wan::WanLink;

/// One region of a federated deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionSpec {
    /// Region index within the federation.
    pub id: u32,
    /// Scheduling domains (shards) inside the region.
    pub shards: usize,
    /// Instances per shard.
    pub instances_per_shard: usize,
}

impl RegionSpec {
    /// Total instances in the region.
    #[must_use]
    pub fn instances(&self) -> usize {
        self.shards * self.instances_per_shard
    }
}

/// The whole federated deployment: regions plus their WAN class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FederationSpec {
    /// The member regions, in id order.
    pub regions: Vec<RegionSpec>,
    /// The WAN distance class connecting them.
    pub wan: WanLink,
}

impl FederationSpec {
    /// An even partition: `instances` split across `regions` regions of
    /// `shards` shards each — aggregate capacity fixed as the region count
    /// varies, mirroring how the shard sweep holds capacity fixed as the
    /// shard count varies.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or the instances do not divide evenly.
    #[must_use]
    pub fn uniform(regions: usize, shards: usize, instances: usize, wan: WanLink) -> Self {
        assert!(regions > 0, "need at least one region");
        assert!(shards > 0, "need at least one shard per region");
        assert!(
            instances % (regions * shards) == 0 && instances > 0,
            "{instances} instances do not split evenly into {regions} regions \
             of {shards} shards"
        );
        let per_shard = instances / (regions * shards);
        FederationSpec {
            regions: (0..regions)
                .map(|id| RegionSpec {
                    id: id as u32,
                    shards,
                    instances_per_shard: per_shard,
                })
                .collect(),
            wan,
        }
    }

    /// Total instances across the federation.
    #[must_use]
    pub fn total_instances(&self) -> usize {
        self.regions.iter().map(RegionSpec::instances).sum()
    }

    /// Total shards across the federation.
    #[must_use]
    pub fn total_shards(&self) -> usize {
        self.regions.iter().map(|r| r.shards).sum()
    }
}

/// The order in which a rejected arrival tries remote regions before the
/// federation gives up and turns it away: SLO-healthy regions first,
/// smallest current-plus-predicted KV footprint, ties by ring distance
/// from `home`, then region id. Regions with no healthy instance are
/// omitted entirely — spilling into a saturated region only trades a
/// rejection for an SLO violation plus WAN latency.
#[must_use]
pub fn spill_order(pools: &[PoolSnapshot], home: usize) -> Vec<usize> {
    let mut candidates: Vec<usize> = (0..pools.len())
        .filter(|&r| r != home && pools[r].slo_healthy_instances > 0)
        .collect();
    candidates.sort_by_key(|&r| {
        (
            pools[r].predicted_kv_bytes,
            ring_distance(home, r, pools.len()),
            r,
        )
    });
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(healthy: usize, predicted: u64) -> PoolSnapshot {
        PoolSnapshot {
            instances: 2,
            slo_healthy_instances: healthy,
            kv_bytes: predicted,
            predicted_kv_bytes: predicted,
            free_gpu_blocks: Some(10),
            reasoning_count: 0,
        }
    }

    #[test]
    fn uniform_partition_fixes_aggregate_capacity() {
        let fed = FederationSpec::uniform(4, 2, 8, WanLink::Continental);
        assert_eq!(fed.regions.len(), 4);
        assert_eq!(fed.total_instances(), 8);
        assert_eq!(fed.total_shards(), 8);
        for (i, region) in fed.regions.iter().enumerate() {
            assert_eq!(region.id, i as u32);
            assert_eq!(region.shards, 2);
            assert_eq!(region.instances_per_shard, 1);
            assert_eq!(region.instances(), 2);
        }
        let single = FederationSpec::uniform(1, 1, 8, WanLink::Metro);
        assert_eq!(single.regions[0].instances(), 8);
    }

    #[test]
    #[should_panic(expected = "do not split evenly")]
    fn uneven_region_partition_rejected() {
        let _ = FederationSpec::uniform(3, 1, 8, WanLink::Continental);
    }

    #[test]
    fn spill_order_ranks_healthy_remotes_by_footprint_then_distance() {
        let pools = vec![
            pool(0, 0), // home (saturated — that's why we're spilling)
            pool(1, 500),
            pool(1, 100),
            pool(0, 0), // saturated remote: omitted
            pool(1, 100), // ties with region 2 on footprint; nearer on the
                        // ring (0→4 wraps in one hop, 0→2 takes two)
        ];
        assert_eq!(spill_order(&pools, 0), vec![4, 2, 1]);
        // No healthy remote: nothing to try, the rejection stands.
        let all_dead = vec![pool(1, 0), pool(0, 0), pool(0, 0)];
        assert_eq!(spill_order(&all_dead, 0), Vec::<usize>::new());
    }
}
