//! # pascal-federation — cross-cluster scheduling above the shard router
//!
//! PASCAL's placement story is a hierarchy of the same decision at growing
//! granularity: Algorithm 1 picks an instance inside a shard, the cluster
//! router picks a shard inside a region, and this crate adds the top rung —
//! a *federation* of regions, each wrapping one cluster-of-shards, connected
//! by a WAN tier whose bandwidth and latency sit well above the intra-region
//! interconnect. Three pieces:
//!
//! * [`RegionSpec`] / [`FederationSpec`] — the deployment description: how
//!   many regions, how each region partitions its instance pool into
//!   shards, and which [`WanLink`] connects them;
//! * [`WanLink`] / [`WanTopology`] — the WAN tier: named link presets
//!   (`metro` … `transoceanic`), all strictly more expensive than the
//!   inter-shard interconnect, plus per-region full-duplex port contention
//!   (the same serialization model as the intra-region fabric, one level
//!   up). Because the migration cost/benefit veto prices transfers at the
//!   link, the WAN tier *naturally* forbids frivolous cross-region moves;
//! * [`FederationPolicy`] — the region router: every arrival carries an
//!   `origin_region` tag, and `static` serves it at home, `nearest` fails
//!   over to the closest healthy region, `predictive` is Algorithm 1
//!   lifted one more level — smallest current-plus-predicted KV footprint
//!   over per-region aggregate [`PoolSnapshot`]s.
//!
//! The engine driver that ties these to the serving simulation lives in
//! `pascal-core::engine` (the `federation` module); this crate holds the
//! pure, engine-independent vocabulary so policies and topologies are
//! testable in isolation.
//!
//! # Examples
//!
//! ```
//! use pascal_federation::{FederationPolicy, WanLink};
//!
//! let policy = FederationPolicy::parse("predictive").unwrap();
//! assert_eq!(policy.key(), "predictive");
//! // Every WAN preset is pricier than the inter-shard interconnect.
//! let wan = WanLink::parse("continental").unwrap();
//! let bytes = 512 * 1024 * 1024;
//! assert!(
//!     wan.link().transfer_time(bytes)
//!         > pascal_model::LinkSpec::interconnect_25gbps().transfer_time(bytes)
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod policy;
mod region;
mod wan;

pub use policy::{ring_distance, FederationPolicy};
pub use region::{spill_order, FederationSpec, RegionSpec};
pub use wan::{WanLink, WanTopology};
