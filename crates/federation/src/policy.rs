//! The federation router: region-boundary placement over per-region
//! aggregate pool snapshots.
//!
//! Every arrival carries an `origin_region` tag (where the user is); the
//! federation router decides *which region serves it* before the region's
//! own shard router and Algorithm 1 take over. Three disciplines:
//!
//! * `static` — always serve at the origin region, whatever its load: the
//!   geo-pinned baseline every real deployment starts from;
//! * `nearest` — serve at the origin while it has an SLO-healthy instance,
//!   else fail over to the nearest healthy region (ring distance, ties to
//!   the lower region id);
//! * `predictive` — Algorithm 1 lifted one more level: restrict to regions
//!   with at least one SLO-healthy instance (fall back to all when none
//!   qualify), then pick the smallest current-plus-predicted KV footprint,
//!   ties by ring distance from the origin, then region id.

use pascal_cluster::PoolSnapshot;

/// A named cross-region routing discipline.
///
/// # Examples
///
/// ```
/// use pascal_federation::FederationPolicy;
///
/// let policy = FederationPolicy::parse("nearest").unwrap();
/// assert_eq!(policy, FederationPolicy::Nearest);
/// assert_eq!(policy.key(), "nearest");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FederationPolicy {
    /// Pin every arrival to its origin region.
    Static,
    /// Origin region while healthy, else the nearest healthy region.
    Nearest,
    /// Algorithm 1 lifted to region granularity: smallest
    /// current-plus-predicted KV footprint among healthy regions, ties by
    /// distance from the origin. Without a length predictor the predicted
    /// term is zero and this degenerates to health-filtered least-loaded.
    Predictive,
}

impl FederationPolicy {
    /// All disciplines, in presentation order.
    pub const ALL: [FederationPolicy; 3] = [
        FederationPolicy::Static,
        FederationPolicy::Nearest,
        FederationPolicy::Predictive,
    ];

    /// The short CLI/JSON key.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            FederationPolicy::Static => "static",
            FederationPolicy::Nearest => "nearest",
            FederationPolicy::Predictive => "predictive",
        }
    }

    /// Parses a CLI-style key.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid keys.
    pub fn parse(s: &str) -> Result<FederationPolicy, String> {
        FederationPolicy::ALL
            .into_iter()
            .find(|p| p.key() == s)
            .ok_or_else(|| {
                let keys: Vec<&str> = FederationPolicy::ALL.iter().map(|p| p.key()).collect();
                format!(
                    "unknown federation router '{s}' (valid: {})",
                    keys.join(", ")
                )
            })
    }

    /// Whether routing reads the per-region aggregates at all. `Static`
    /// never does — the federation skips the monitor sweep entirely.
    #[must_use]
    pub fn needs_pool_state(self) -> bool {
        !matches!(self, FederationPolicy::Static)
    }

    /// Picks the serving region for an arrival originating in `origin`.
    /// `pools` holds one aggregate snapshot per region.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty or `origin` is out of range.
    #[must_use]
    pub fn route(self, origin: usize, pools: &[PoolSnapshot]) -> usize {
        assert!(!pools.is_empty(), "routing requires at least one region");
        assert!(origin < pools.len(), "origin region {origin} out of range");
        match self {
            FederationPolicy::Static => origin,
            FederationPolicy::Nearest => {
                if pools[origin].slo_healthy_instances > 0 {
                    return origin;
                }
                // Nearest healthy region by ring distance, ties to the
                // lower id; a fully saturated federation stays home.
                pools
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.slo_healthy_instances > 0)
                    .min_by_key(|(r, _)| (ring_distance(origin, *r, pools.len()), *r))
                    .map_or(origin, |(r, _)| r)
            }
            FederationPolicy::Predictive => {
                let rank = |(r, p): (usize, &PoolSnapshot)| {
                    (
                        p.predicted_kv_bytes,
                        ring_distance(origin, r, pools.len()),
                        r,
                    )
                };
                let healthy: Vec<(usize, &PoolSnapshot)> = pools
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.slo_healthy_instances > 0)
                    .collect();
                let candidates = if healthy.is_empty() {
                    pools.iter().enumerate().collect()
                } else {
                    healthy
                };
                candidates
                    .into_iter()
                    .min_by_key(|&c| rank(c))
                    .expect("non-empty candidate set")
                    .0
            }
        }
    }
}

impl std::fmt::Display for FederationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// Hop count between two regions on the federation's ring — the distance
/// stand-in the `nearest` policy and the predictive tie-break use (a real
/// deployment would read an RTT matrix; a ring is the simplest non-trivial
/// geometry that still makes "nearest" mean something).
#[must_use]
pub fn ring_distance(a: usize, b: usize, regions: usize) -> usize {
    assert!(regions > 0, "ring distance needs at least one region");
    let d = a.abs_diff(b) % regions;
    d.min(regions - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(healthy: usize, kv: u64, predicted_extra: u64) -> PoolSnapshot {
        PoolSnapshot {
            instances: 2,
            slo_healthy_instances: healthy,
            kv_bytes: kv,
            predicted_kv_bytes: kv + predicted_extra,
            free_gpu_blocks: Some(100),
            reasoning_count: 0,
        }
    }

    #[test]
    fn keys_round_trip_and_errors_list_valid_values() {
        for p in FederationPolicy::ALL {
            assert_eq!(FederationPolicy::parse(p.key()), Ok(p));
            assert_eq!(p.to_string(), p.key());
        }
        let err = FederationPolicy::parse("anycast").expect_err("unknown policy");
        assert!(
            err.contains("valid: static, nearest, predictive"),
            "error must list the valid values, got: {err}"
        );
        assert!(!FederationPolicy::Static.needs_pool_state());
        assert!(FederationPolicy::Nearest.needs_pool_state());
        assert!(FederationPolicy::Predictive.needs_pool_state());
    }

    #[test]
    fn static_always_serves_at_origin() {
        let pools = vec![pool(0, 900, 0), pool(2, 0, 0)];
        assert_eq!(FederationPolicy::Static.route(0, &pools), 0);
        assert_eq!(FederationPolicy::Static.route(1, &pools), 1);
    }

    #[test]
    fn nearest_stays_home_while_healthy_and_fails_over_by_distance() {
        let healthy_home = vec![pool(1, 900, 0), pool(2, 0, 0)];
        assert_eq!(FederationPolicy::Nearest.route(0, &healthy_home), 0);
        // Unhealthy home on a 4-ring: regions 1 and 3 are both one hop
        // away — the tie goes to the lower id; region 2 is farther.
        let pools = vec![pool(0, 0, 0), pool(1, 0, 0), pool(1, 0, 0), pool(1, 0, 0)];
        assert_eq!(FederationPolicy::Nearest.route(0, &pools), 1);
        let only_far = vec![pool(0, 0, 0), pool(0, 0, 0), pool(1, 0, 0), pool(0, 0, 0)];
        assert_eq!(FederationPolicy::Nearest.route(0, &only_far), 2);
        // Nothing healthy anywhere: stay home.
        let saturated = vec![pool(0, 0, 0), pool(0, 0, 0)];
        assert_eq!(FederationPolicy::Nearest.route(0, &saturated), 0);
    }

    #[test]
    fn predictive_ranks_by_footprint_then_distance() {
        let pools = vec![
            pool(1, 500, 0),   // home, predicted 500
            pool(0, 100, 0),   // unhealthy: excluded despite smallest kv
            pool(1, 300, 0),   // healthy, predicted 300 → winner
            pool(1, 300, 300), // healthy, predicted 600
        ];
        assert_eq!(FederationPolicy::Predictive.route(0, &pools), 2);
        // Footprint ties break toward the origin's neighborhood: regions 1
        // and 2 tie at 100, and region 2 is the origin itself (distance 0).
        let tied = vec![pool(1, 200, 0), pool(1, 100, 0), pool(1, 100, 0)];
        assert_eq!(FederationPolicy::Predictive.route(2, &tied), 2);
        // From origin 0 the same tie resolves to the lower id.
        assert_eq!(FederationPolicy::Predictive.route(0, &tied), 1);
        // With every region unhealthy, fall back to all regions.
        let saturated = vec![pool(0, 500, 0), pool(0, 100, 0)];
        assert_eq!(FederationPolicy::Predictive.route(0, &saturated), 1);
    }

    #[test]
    fn ring_distance_wraps() {
        assert_eq!(ring_distance(0, 3, 4), 1);
        assert_eq!(ring_distance(0, 2, 4), 2);
        assert_eq!(ring_distance(1, 1, 4), 0);
        assert_eq!(ring_distance(0, 0, 1), 0);
        assert_eq!(ring_distance(5, 0, 3), 1);
    }
}
