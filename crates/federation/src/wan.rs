//! The WAN tier: named cross-region links and their contention state.
//!
//! Cross-region KV transfers ride links an order of magnitude slower (and
//! dozens of milliseconds farther) than the intra-region interconnect.
//! [`WanLink`] names four distance classes; [`WanTopology`] gives every
//! region one full-duplex WAN port and serializes concurrent transfers on
//! the shared endpoints — the same contention model as the instance fabric
//! and the inter-shard interconnect, applied one level up. The migration
//! cost/benefit veto prices candidate moves at
//! [`WanTopology::cross_transfer_time`], so the tier's expense is what
//! keeps cross-region migration an act of last resort.

use pascal_cluster::Fabric;
use pascal_model::LinkSpec;
use pascal_sim::{SimDuration, SimTime};

/// A named WAN distance class connecting the federation's regions.
///
/// # Examples
///
/// ```
/// use pascal_federation::WanLink;
///
/// let wan = WanLink::parse("transoceanic").unwrap();
/// assert_eq!(wan.key(), "transoceanic");
/// assert!(WanLink::parse("carrier-pigeon").is_err());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WanLink {
    /// Same metro area (<100 km): 25 Gbps effective, 2 ms RTT-class setup.
    Metro,
    /// Same geographic region (~1000 km): 10 Gbps, 15 ms.
    Regional,
    /// Cross-continent (~4000 km): 5 Gbps, 35 ms — the default.
    #[default]
    Continental,
    /// Across an ocean: 2.5 Gbps, 75 ms.
    Transoceanic,
}

impl WanLink {
    /// All distance classes, nearest first.
    pub const ALL: [WanLink; 4] = [
        WanLink::Metro,
        WanLink::Regional,
        WanLink::Continental,
        WanLink::Transoceanic,
    ];

    /// The short CLI/JSON key.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            WanLink::Metro => "metro",
            WanLink::Regional => "regional",
            WanLink::Continental => "continental",
            WanLink::Transoceanic => "transoceanic",
        }
    }

    /// Parses a CLI-style key.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid keys.
    pub fn parse(s: &str) -> Result<WanLink, String> {
        WanLink::ALL
            .into_iter()
            .find(|w| w.key() == s)
            .ok_or_else(|| {
                let keys: Vec<&str> = WanLink::ALL.iter().map(|w| w.key()).collect();
                format!("unknown WAN link '{s}' (valid: {})", keys.join(", "))
            })
    }

    /// The physical link: effective bandwidth at ~95% protocol efficiency,
    /// setup latency dominated by propagation delay. Every preset is
    /// strictly more expensive than the inter-shard
    /// [`LinkSpec::interconnect_25gbps`] at every transfer size — the
    /// invariant that makes the cost/benefit veto monotone up the
    /// hierarchy.
    #[must_use]
    pub fn link(self) -> LinkSpec {
        let (gbps, latency_ms) = match self {
            WanLink::Metro => (25.0, 2.0),
            WanLink::Regional => (10.0, 15.0),
            WanLink::Continental => (5.0, 35.0),
            WanLink::Transoceanic => (2.5, 75.0),
        };
        LinkSpec::new(gbps * 1.0e9 / 8.0 * 0.95, latency_ms * 1.0e-3)
    }
}

impl std::fmt::Display for WanLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// The federation's WAN tier: one full-duplex port per region over a
/// [`WanLink`], with FIFO serialization on shared endpoints.
///
/// # Examples
///
/// ```
/// use pascal_federation::{WanLink, WanTopology};
/// use pascal_sim::SimTime;
///
/// let mut wan = WanTopology::new(3, WanLink::Metro);
/// let (s1, f1) = wan.cross_migrate(SimTime::ZERO, 0, 2, 1 << 20);
/// let (s2, _) = wan.cross_migrate(SimTime::ZERO, 1, 2, 1 << 20);
/// assert_eq!(s1, SimTime::ZERO);
/// assert_eq!(s2, f1, "shared ingress serializes");
/// ```
#[derive(Clone, Debug)]
pub struct WanTopology {
    wan: WanLink,
    ports: Fabric,
}

impl WanTopology {
    /// A WAN tier connecting `regions` regions over `wan`.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is zero.
    #[must_use]
    pub fn new(regions: usize, wan: WanLink) -> Self {
        assert!(regions > 0, "a federation needs at least one region");
        WanTopology {
            wan,
            ports: Fabric::new(regions, wan.link()),
        }
    }

    /// Number of regions on the WAN tier.
    #[must_use]
    pub fn num_regions(&self) -> usize {
        self.ports.len()
    }

    /// The WAN distance class.
    #[must_use]
    pub fn wan(&self) -> WanLink {
        self.wan
    }

    /// Queueing-free service time of a cross-region transfer — the figure
    /// the migration cost/benefit veto prices a candidate move at.
    #[must_use]
    pub fn cross_transfer_time(&self, bytes: u64) -> SimDuration {
        self.wan.link().transfer_time(bytes)
    }

    /// When `region`'s WAN port next goes fully idle (the later of its
    /// egress and ingress horizons) — the telemetry gauge behind the
    /// per-region WAN occupancy series.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    #[must_use]
    pub fn port_busy_until(&self, region: usize) -> SimTime {
        self.ports.busy_until(region)
    }

    /// Schedules a cross-region KV migration of `bytes` submitted at `now`,
    /// holding the source region's WAN egress and the destination's
    /// ingress; returns `(start, finish)`.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or either index is out of range.
    pub fn cross_migrate(
        &mut self,
        now: SimTime,
        from: usize,
        to: usize,
        bytes: u64,
    ) -> (SimTime, SimTime) {
        self.ports.migrate(now, from, to, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip_and_errors_list_valid_values() {
        for wan in WanLink::ALL {
            assert_eq!(WanLink::parse(wan.key()), Ok(wan));
            assert_eq!(wan.to_string(), wan.key());
        }
        let err = WanLink::parse("dialup").expect_err("unknown link");
        assert!(
            err.contains("valid: metro, regional, continental, transoceanic"),
            "error must list the valid values, got: {err}"
        );
        assert_eq!(WanLink::default(), WanLink::Continental);
    }

    #[test]
    fn every_wan_class_is_pricier_than_the_interconnect() {
        // The hierarchy invariant: fabric < interconnect < every WAN class.
        // Without it the cost/benefit veto would stop being monotone in
        // distance and a "cheap" WAN hop could undercut a local move.
        let interconnect = LinkSpec::interconnect_25gbps();
        for wan in WanLink::ALL {
            for bytes in [0u64, 1 << 20, 1 << 30] {
                assert!(
                    wan.link().transfer_time(bytes) > interconnect.transfer_time(bytes),
                    "{wan} must be pricier than the interconnect at {bytes} bytes"
                );
            }
        }
    }

    #[test]
    fn wan_classes_are_ordered_by_distance() {
        let bytes = 256 * 1024 * 1024;
        let times: Vec<f64> = WanLink::ALL
            .iter()
            .map(|w| w.link().transfer_time(bytes).as_secs_f64())
            .collect();
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "transfer times must grow with distance: {times:?}"
        );
    }

    #[test]
    fn topology_contends_on_shared_ports_and_not_on_disjoint_pairs() {
        let mut wan = WanTopology::new(4, WanLink::Regional);
        assert_eq!(wan.num_regions(), 4);
        assert_eq!(wan.wan(), WanLink::Regional);
        let bytes = 1 << 30;
        let (_, f1) = wan.cross_migrate(SimTime::ZERO, 0, 1, bytes);
        let (s2, _) = wan.cross_migrate(SimTime::ZERO, 2, 3, bytes);
        assert_eq!(s2, SimTime::ZERO, "disjoint region pairs run concurrently");
        let (s3, _) = wan.cross_migrate(SimTime::ZERO, 0, 2, bytes);
        assert_eq!(s3, f1, "region 0's egress serializes");
        assert_eq!(
            wan.cross_transfer_time(bytes),
            WanLink::Regional.link().transfer_time(bytes)
        );
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn zero_regions_rejected() {
        let _ = WanTopology::new(0, WanLink::Metro);
    }

    #[test]
    #[should_panic(expected = "must change instance")]
    fn same_region_wan_transfer_rejected() {
        let mut wan = WanTopology::new(2, WanLink::Metro);
        let _ = wan.cross_migrate(SimTime::ZERO, 1, 1, 10);
    }
}
