//! Trace synthesis: turning dataset profiles and arrival processes into
//! concrete request sequences, including the paper's characterization
//! workloads (§III-A).

use pascal_sim::{SimRng, SimTime};

use crate::arrivals::ArrivalProcess;
use crate::dataset::DatasetMix;
use crate::request::{RequestId, RequestSpec};

/// A fully materialized workload: requests sorted by arrival time.
///
/// # Examples
///
/// ```
/// use pascal_workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};
///
/// let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
///     .arrivals(ArrivalProcess::poisson(4.0))
///     .count(100)
///     .seed(7)
///     .build();
/// assert_eq!(trace.requests().len(), 100);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    requests: Vec<RequestSpec>,
}

impl Trace {
    /// Wraps a pre-built request list.
    ///
    /// # Panics
    ///
    /// Panics if the requests are not sorted by arrival time or ids are not
    /// unique.
    #[must_use]
    pub fn from_requests(requests: Vec<RequestSpec>) -> Self {
        assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace requests must be sorted by arrival"
        );
        let mut ids: Vec<u64> = requests.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            requests.len(),
            "trace request ids must be unique"
        );
        Trace { requests }
    }

    /// The requests in arrival order.
    #[must_use]
    pub fn requests(&self) -> &[RequestSpec] {
        &self.requests
    }

    /// Total output tokens across the trace.
    #[must_use]
    pub fn total_output_tokens(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| u64::from(r.output_tokens()))
            .sum()
    }

    /// The time of the last arrival (zero for an empty trace).
    #[must_use]
    pub fn last_arrival(&self) -> SimTime {
        self.requests.last().map_or(SimTime::ZERO, |r| r.arrival)
    }
}

impl IntoIterator for Trace {
    type Item = RequestSpec;
    type IntoIter = std::vec::IntoIter<RequestSpec>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

/// Builder for stochastic traces.
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    mix: DatasetMix,
    arrivals: ArrivalProcess,
    count: usize,
    seed: u64,
    region_weights: Vec<f64>,
}

impl TraceBuilder {
    /// Starts a builder over a dataset mixture with defaults of 300 requests
    /// (the paper's characterization count), 1 req/s Poisson arrivals and
    /// seed 0.
    #[must_use]
    pub fn new(mix: DatasetMix) -> Self {
        TraceBuilder {
            mix,
            arrivals: ArrivalProcess::poisson(1.0),
            count: 300,
            seed: 0,
            region_weights: Vec::new(),
        }
    }

    /// Sets the arrival process.
    #[must_use]
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the number of requests.
    #[must_use]
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Sets the RNG seed (lengths and arrivals derive from it).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Tags every request with an origin region drawn from a *harmonic*
    /// popularity skew over `regions` regions (region `i` gets weight
    /// `1/(i+1)`): real geo-distributed traffic is never uniform, and the
    /// skew is what makes region-aware routing a non-trivial decision.
    /// Origins come from an RNG stream separate from arrivals and lengths,
    /// so the request bodies are byte-identical at every region count —
    /// federated comparisons stay paired. `regions <= 1` clears the tags.
    #[must_use]
    pub fn regions(mut self, regions: usize) -> Self {
        self.region_weights = if regions <= 1 {
            Vec::new()
        } else {
            (0..regions).map(|i| 1.0 / (i as f64 + 1.0)).collect()
        };
        self
    }

    /// Tags origins from an explicit per-region weight vector (one entry
    /// per region; weights need not be normalized). Overrides
    /// [`TraceBuilder::regions`]' harmonic default.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative, non-finite, or the sum is zero.
    #[must_use]
    pub fn region_weights(mut self, weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "region weights must be non-negative finite numbers"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "region weights must not sum to zero"
        );
        self.region_weights = if weights.len() <= 1 {
            Vec::new()
        } else {
            weights
        };
        self
    }

    /// Materializes the trace.
    #[must_use]
    pub fn build(&self) -> Trace {
        let mut root = SimRng::seed_from(self.seed);
        let mut arrival_rng = root.split(0xA11);
        let mut length_rng = root.split(0x1E9);
        let times = self.arrivals.generate(self.count, &mut arrival_rng);
        let mut requests: Vec<RequestSpec> = times
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let profile = self.mix.sample_profile(&mut length_rng);
                let prompt = profile.prompt.sample(&mut length_rng).max(1);
                let reasoning = profile.reasoning.sample(&mut length_rng).max(1);
                let answering = profile.answering.sample(&mut length_rng);
                RequestSpec::new(RequestId(i as u64), arrival, prompt, reasoning, answering)
                    .with_dataset(&profile.name)
            })
            .collect();
        // Origin tagging is a second pass over a third RNG stream: the
        // arrival and length streams above never see it, so the same seed
        // yields the same request bodies at every region count.
        if !self.region_weights.is_empty() {
            let mut origin_rng = root.split(0x0121);
            let total: f64 = self.region_weights.iter().sum();
            // Rounding fallback: if `draw` survives every subtraction
            // (possible when `uniform * total` rounds up to `total`), the
            // draw belongs to the *last positive-weight* region — never to
            // an explicitly zero-weight one.
            let last_positive = self
                .region_weights
                .iter()
                .rposition(|w| *w > 0.0)
                .expect("weights sum to a positive total") as u32;
            for req in &mut requests {
                let mut draw = origin_rng.uniform_f64() * total;
                let mut origin = last_positive;
                for (i, w) in self.region_weights.iter().enumerate() {
                    draw -= w;
                    if draw < 0.0 {
                        origin = i as u32;
                        break;
                    }
                }
                req.origin_region = origin;
            }
        }
        Trace::from_requests(requests)
    }
}

/// The reasoning-phase characterization workload of Fig. 4: 300 requests,
/// 128-token prompts, reasoning length drawn uniformly from
/// `{128, 256, 512, 1024, 2048}`, no answering tokens (the experiment stops
/// at the phase boundary), Poisson arrivals at `rate` req/s.
#[must_use]
pub fn fig04_reasoning_trace(count: usize, rate: f64, seed: u64) -> Trace {
    let mut root = SimRng::seed_from(seed);
    let mut arrival_rng = root.split(0xA11);
    let mut length_rng = root.split(0x1E9);
    let times = ArrivalProcess::poisson(rate).generate(count, &mut arrival_rng);
    let lengths = [128u32, 256, 512, 1024, 2048];
    let requests = times
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| {
            let reasoning = *length_rng.choose(&lengths);
            RequestSpec::new(RequestId(i as u64), arrival, 128, reasoning, 0)
        })
        .collect();
    Trace::from_requests(requests)
}

/// The answering-phase characterization workload of Fig. 5: 300 *warm*
/// requests whose 128 tokens of prefill+reasoning KV already exist; each
/// generates an answering length drawn uniformly from
/// `{128, 256, 512, 1024, 2048}`.
#[must_use]
pub fn fig05_answering_trace(count: usize, rate: f64, seed: u64) -> Trace {
    let mut root = SimRng::seed_from(seed);
    let mut arrival_rng = root.split(0xA11);
    let mut length_rng = root.split(0x1E9);
    let times = ArrivalProcess::poisson(rate).generate(count, &mut arrival_rng);
    let lengths = [128u32, 256, 512, 1024, 2048];
    let requests = times
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| {
            let answering = *length_rng.choose(&lengths);
            RequestSpec::warm(RequestId(i as u64), arrival, 128, answering)
        })
        .collect();
    Trace::from_requests(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetProfile;
    use crate::request::Phase;

    #[test]
    fn builder_produces_requested_count_sorted() {
        let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::arena_hard()))
            .count(50)
            .seed(3)
            .build();
        assert_eq!(trace.requests().len(), 50);
        assert!(trace
            .requests()
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn builder_is_deterministic_per_seed() {
        let mk = |seed| {
            TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
                .count(40)
                .seed(seed)
                .build()
        };
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
    }

    #[test]
    fn fig04_trace_shape() {
        let trace = fig04_reasoning_trace(300, 2.0, 1);
        assert_eq!(trace.requests().len(), 300);
        let allowed = [128, 256, 512, 1024, 2048];
        for r in trace.requests() {
            assert_eq!(r.prompt_tokens, 128);
            assert_eq!(r.answering_tokens, 0);
            assert!(allowed.contains(&r.reasoning_tokens));
            assert_eq!(r.initial_phase(), Phase::Reasoning);
        }
    }

    #[test]
    fn fig05_trace_shape() {
        let trace = fig05_answering_trace(300, 2.0, 1);
        assert_eq!(trace.requests().len(), 300);
        let allowed = [128, 256, 512, 1024, 2048];
        for r in trace.requests() {
            assert!(r.warm_start);
            assert_eq!(r.prompt_tokens, 128);
            assert_eq!(r.reasoning_tokens, 0);
            assert!(allowed.contains(&r.answering_tokens));
            assert_eq!(r.initial_phase(), Phase::Answering);
        }
    }

    #[test]
    fn region_tagging_is_skewed_and_leaves_bodies_identical() {
        let base = TraceBuilder::new(DatasetMix::single(DatasetProfile::arena_hard()))
            .count(400)
            .seed(11);
        let untagged = base.clone().build();
        let tagged = base.clone().regions(4).build();
        // Same bodies (arrivals, lengths) — only the origin tags differ.
        for (a, b) in untagged.requests().iter().zip(tagged.requests()) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.prompt_tokens, b.prompt_tokens);
            assert_eq!(a.reasoning_tokens, b.reasoning_tokens);
            assert_eq!(a.answering_tokens, b.answering_tokens);
            assert_eq!(a.origin_region, 0);
            assert!(b.origin_region < 4);
        }
        // The harmonic skew: region 0 is the hottest, every region nonempty.
        let count =
            |t: &Trace, r: u32| t.requests().iter().filter(|q| q.origin_region == r).count();
        let counts: Vec<usize> = (0..4).map(|r| count(&tagged, r)).collect();
        assert!(counts.iter().all(|&c| c > 0), "all regions hit: {counts:?}");
        assert!(
            counts[0] > counts[3],
            "region 0 must be hotter than region 3: {counts:?}"
        );
        // Deterministic per seed; regions(1) clears the tags again.
        assert_eq!(tagged, base.clone().regions(4).build());
        assert_eq!(untagged, base.clone().regions(4).regions(1).build());
    }

    #[test]
    fn explicit_region_weights_override_the_harmonic_default() {
        let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
            .count(300)
            .seed(3)
            .region_weights(vec![0.0, 1.0, 0.0])
            .build();
        assert!(trace.requests().iter().all(|r| r.origin_region == 1));
    }

    #[test]
    #[should_panic(expected = "must not sum to zero")]
    fn zero_region_weights_rejected() {
        let _ = TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
            .region_weights(vec![0.0, 0.0]);
    }

    #[test]
    fn total_output_tokens_sums() {
        let trace = fig04_reasoning_trace(10, 1.0, 2);
        let expected: u64 = trace
            .requests()
            .iter()
            .map(|r| u64::from(r.reasoning_tokens))
            .sum();
        assert_eq!(trace.total_output_tokens(), expected);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_trace_rejected() {
        let a = RequestSpec::new(RequestId(0), SimTime::from_secs_f64(5.0), 10, 10, 10);
        let b = RequestSpec::new(RequestId(1), SimTime::from_secs_f64(1.0), 10, 10, 10);
        let _ = Trace::from_requests(vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_ids_rejected() {
        let a = RequestSpec::new(RequestId(0), SimTime::ZERO, 10, 10, 10);
        let b = RequestSpec::new(RequestId(0), SimTime::from_secs_f64(1.0), 10, 10, 10);
        let _ = Trace::from_requests(vec![a, b]);
    }
}
