//! Trace synthesis: turning dataset profiles and arrival processes into
//! concrete request sequences, including the paper's characterization
//! workloads (§III-A).

use pascal_sim::{SimRng, SimTime};

use crate::arrivals::ArrivalProcess;
use crate::dataset::DatasetMix;
use crate::request::{RequestId, RequestSpec};

/// A fully materialized workload: requests sorted by arrival time.
///
/// # Examples
///
/// ```
/// use pascal_workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};
///
/// let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
///     .arrivals(ArrivalProcess::poisson(4.0))
///     .count(100)
///     .seed(7)
///     .build();
/// assert_eq!(trace.requests().len(), 100);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    requests: Vec<RequestSpec>,
}

impl Trace {
    /// Wraps a pre-built request list.
    ///
    /// # Panics
    ///
    /// Panics if the requests are not sorted by arrival time or ids are not
    /// unique.
    #[must_use]
    pub fn from_requests(requests: Vec<RequestSpec>) -> Self {
        assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace requests must be sorted by arrival"
        );
        let mut ids: Vec<u64> = requests.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            requests.len(),
            "trace request ids must be unique"
        );
        Trace { requests }
    }

    /// The requests in arrival order.
    #[must_use]
    pub fn requests(&self) -> &[RequestSpec] {
        &self.requests
    }

    /// Total output tokens across the trace.
    #[must_use]
    pub fn total_output_tokens(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| u64::from(r.output_tokens()))
            .sum()
    }

    /// The time of the last arrival (zero for an empty trace).
    #[must_use]
    pub fn last_arrival(&self) -> SimTime {
        self.requests.last().map_or(SimTime::ZERO, |r| r.arrival)
    }
}

impl IntoIterator for Trace {
    type Item = RequestSpec;
    type IntoIter = std::vec::IntoIter<RequestSpec>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

/// Builder for stochastic traces.
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    mix: DatasetMix,
    arrivals: ArrivalProcess,
    count: usize,
    seed: u64,
}

impl TraceBuilder {
    /// Starts a builder over a dataset mixture with defaults of 300 requests
    /// (the paper's characterization count), 1 req/s Poisson arrivals and
    /// seed 0.
    #[must_use]
    pub fn new(mix: DatasetMix) -> Self {
        TraceBuilder {
            mix,
            arrivals: ArrivalProcess::poisson(1.0),
            count: 300,
            seed: 0,
        }
    }

    /// Sets the arrival process.
    #[must_use]
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the number of requests.
    #[must_use]
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Sets the RNG seed (lengths and arrivals derive from it).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Materializes the trace.
    #[must_use]
    pub fn build(&self) -> Trace {
        let mut root = SimRng::seed_from(self.seed);
        let mut arrival_rng = root.split(0xA11);
        let mut length_rng = root.split(0x1E9);
        let times = self.arrivals.generate(self.count, &mut arrival_rng);
        let requests = times
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let profile = self.mix.sample_profile(&mut length_rng);
                let prompt = profile.prompt.sample(&mut length_rng).max(1);
                let reasoning = profile.reasoning.sample(&mut length_rng).max(1);
                let answering = profile.answering.sample(&mut length_rng);
                RequestSpec::new(RequestId(i as u64), arrival, prompt, reasoning, answering)
                    .with_dataset(&profile.name)
            })
            .collect();
        Trace::from_requests(requests)
    }
}

/// The reasoning-phase characterization workload of Fig. 4: 300 requests,
/// 128-token prompts, reasoning length drawn uniformly from
/// `{128, 256, 512, 1024, 2048}`, no answering tokens (the experiment stops
/// at the phase boundary), Poisson arrivals at `rate` req/s.
#[must_use]
pub fn fig04_reasoning_trace(count: usize, rate: f64, seed: u64) -> Trace {
    let mut root = SimRng::seed_from(seed);
    let mut arrival_rng = root.split(0xA11);
    let mut length_rng = root.split(0x1E9);
    let times = ArrivalProcess::poisson(rate).generate(count, &mut arrival_rng);
    let lengths = [128u32, 256, 512, 1024, 2048];
    let requests = times
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| {
            let reasoning = *length_rng.choose(&lengths);
            RequestSpec::new(RequestId(i as u64), arrival, 128, reasoning, 0)
        })
        .collect();
    Trace::from_requests(requests)
}

/// The answering-phase characterization workload of Fig. 5: 300 *warm*
/// requests whose 128 tokens of prefill+reasoning KV already exist; each
/// generates an answering length drawn uniformly from
/// `{128, 256, 512, 1024, 2048}`.
#[must_use]
pub fn fig05_answering_trace(count: usize, rate: f64, seed: u64) -> Trace {
    let mut root = SimRng::seed_from(seed);
    let mut arrival_rng = root.split(0xA11);
    let mut length_rng = root.split(0x1E9);
    let times = ArrivalProcess::poisson(rate).generate(count, &mut arrival_rng);
    let lengths = [128u32, 256, 512, 1024, 2048];
    let requests = times
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| {
            let answering = *length_rng.choose(&lengths);
            RequestSpec::warm(RequestId(i as u64), arrival, 128, answering)
        })
        .collect();
    Trace::from_requests(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetProfile;
    use crate::request::Phase;

    #[test]
    fn builder_produces_requested_count_sorted() {
        let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::arena_hard()))
            .count(50)
            .seed(3)
            .build();
        assert_eq!(trace.requests().len(), 50);
        assert!(trace
            .requests()
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn builder_is_deterministic_per_seed() {
        let mk = |seed| {
            TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
                .count(40)
                .seed(seed)
                .build()
        };
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
    }

    #[test]
    fn fig04_trace_shape() {
        let trace = fig04_reasoning_trace(300, 2.0, 1);
        assert_eq!(trace.requests().len(), 300);
        let allowed = [128, 256, 512, 1024, 2048];
        for r in trace.requests() {
            assert_eq!(r.prompt_tokens, 128);
            assert_eq!(r.answering_tokens, 0);
            assert!(allowed.contains(&r.reasoning_tokens));
            assert_eq!(r.initial_phase(), Phase::Reasoning);
        }
    }

    #[test]
    fn fig05_trace_shape() {
        let trace = fig05_answering_trace(300, 2.0, 1);
        assert_eq!(trace.requests().len(), 300);
        let allowed = [128, 256, 512, 1024, 2048];
        for r in trace.requests() {
            assert!(r.warm_start);
            assert_eq!(r.prompt_tokens, 128);
            assert_eq!(r.reasoning_tokens, 0);
            assert!(allowed.contains(&r.answering_tokens));
            assert_eq!(r.initial_phase(), Phase::Answering);
        }
    }

    #[test]
    fn total_output_tokens_sums() {
        let trace = fig04_reasoning_trace(10, 1.0, 2);
        let expected: u64 = trace
            .requests()
            .iter()
            .map(|r| u64::from(r.reasoning_tokens))
            .sum();
        assert_eq!(trace.total_output_tokens(), expected);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_trace_rejected() {
        let a = RequestSpec::new(RequestId(0), SimTime::from_secs_f64(5.0), 10, 10, 10);
        let b = RequestSpec::new(RequestId(1), SimTime::from_secs_f64(1.0), 10, 10, 10);
        let _ = Trace::from_requests(vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_ids_rejected() {
        let a = RequestSpec::new(RequestId(0), SimTime::ZERO, 10, 10, 10);
        let b = RequestSpec::new(RequestId(0), SimTime::from_secs_f64(1.0), 10, 10, 10);
        let _ = Trace::from_requests(vec![a, b]);
    }
}
