//! Dataset profiles fitted to the paper's published token statistics.
//!
//! Fig. 8 reports the reasoning/answering token distributions of the two
//! chat-style traces (AlpacaEval2.0 and Arena-Hard) and Fig. 14 the three
//! reasoning-heavy benchmarks (MATH-500, GPQA, LiveCodeBench); all were
//! produced by querying o4-mini. We reproduce each as a clamped log-normal
//! matched to the published mean and axis range, with skews chosen so that
//! the qualitative facts the paper relies on hold: >70% of chat requests
//! stay below 1,000 reasoning tokens (Fig. 10 caption) and GPQA reaches the
//! quoted 8.48× reasoning:answering ratio (§V-D).

use pascal_sim::SimRng;

use crate::dist::TokenDist;

/// Token-length profile of one dataset: prompt, reasoning and answering
/// distributions.
///
/// # Examples
///
/// ```
/// use pascal_workload::DatasetProfile;
///
/// let arena = DatasetProfile::arena_hard();
/// assert!((arena.reasoning.mean() - 968.35).abs() < 1.0);
/// assert!((arena.answering.mean() - 824.02).abs() < 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DatasetProfile {
    /// Dataset name as used in the paper's figures.
    pub name: String,
    /// Prompt-length distribution (not published; short-chat estimate).
    pub prompt: TokenDist,
    /// Hidden reasoning token distribution (includes the boundary token).
    pub reasoning: TokenDist,
    /// User-visible answering token distribution.
    pub answering: TokenDist,
}

impl DatasetProfile {
    /// AlpacaEval2.0 (Fig. 8(a)): reasoning mean 557.75, answering mean
    /// 566.85, support up to ~6k tokens.
    #[must_use]
    pub fn alpaca_eval2() -> Self {
        DatasetProfile {
            name: "AlpacaEval2.0".to_owned(),
            prompt: TokenDist::log_normal_mean(96.0, 0.6, 8, 1024),
            reasoning: TokenDist::log_normal_mean(557.75, 0.95, 16, 6_000),
            answering: TokenDist::log_normal_mean(566.85, 0.85, 16, 6_000),
        }
    }

    /// Arena-Hard (Fig. 8(b)): reasoning mean 968.35, answering mean 824.02,
    /// support up to ~15k tokens.
    #[must_use]
    pub fn arena_hard() -> Self {
        DatasetProfile {
            name: "Arena-Hard".to_owned(),
            prompt: TokenDist::log_normal_mean(128.0, 0.6, 8, 2_048),
            reasoning: TokenDist::log_normal_mean(968.35, 1.0, 16, 15_000),
            answering: TokenDist::log_normal_mean(824.02, 0.9, 16, 15_000),
        }
    }

    /// MATH-500 (Fig. 14(a)): reasoning mean 747.20, answering mean 164.67.
    #[must_use]
    pub fn math500() -> Self {
        DatasetProfile {
            name: "MATH-500".to_owned(),
            prompt: TokenDist::log_normal_mean(128.0, 0.5, 8, 1_024),
            reasoning: TokenDist::log_normal_mean(747.20, 1.1, 16, 8_000),
            answering: TokenDist::log_normal_mean(164.67, 0.8, 8, 2_000),
        }
    }

    /// GPQA (Fig. 14(b)): reasoning mean 2679.27, answering mean 316.09 —
    /// the 8.48× reasoning-heavy extreme quoted in §V-D.
    #[must_use]
    pub fn gpqa() -> Self {
        DatasetProfile {
            name: "GPQA".to_owned(),
            prompt: TokenDist::log_normal_mean(192.0, 0.5, 8, 1_024),
            reasoning: TokenDist::log_normal_mean(2_679.27, 1.0, 32, 15_000),
            answering: TokenDist::log_normal_mean(316.09, 0.8, 8, 3_000),
        }
    }

    /// LiveCodeBench (Fig. 14(c)): reasoning mean 1896.64, answering mean
    /// 697.09.
    #[must_use]
    pub fn live_code_bench() -> Self {
        DatasetProfile {
            name: "LiveCodeBench".to_owned(),
            prompt: TokenDist::log_normal_mean(256.0, 0.5, 8, 2_048),
            reasoning: TokenDist::log_normal_mean(1_896.64, 1.0, 32, 15_000),
            answering: TokenDist::log_normal_mean(697.09, 0.9, 16, 8_000),
        }
    }

    /// All three reasoning-heavy profiles of Fig. 14.
    #[must_use]
    pub fn reasoning_heavy_suite() -> Vec<DatasetProfile> {
        vec![
            DatasetProfile::math500(),
            DatasetProfile::gpqa(),
            DatasetProfile::live_code_bench(),
        ]
    }

    /// Mean total output tokens (reasoning + answering) per request.
    #[must_use]
    pub fn mean_output_tokens(&self) -> f64 {
        self.reasoning.mean() + self.answering.mean()
    }
}

/// A weighted mixture of dataset profiles; each request draws its dataset
/// first, then its lengths — the construction of Fig. 16's trace (50%
/// Arena-Hard, 50% reasoning-heavy sampled uniformly).
#[derive(Clone, Debug)]
pub struct DatasetMix {
    components: Vec<(DatasetProfile, f64)>,
    total_weight: f64,
}

impl DatasetMix {
    /// Builds a mixture from `(profile, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or any weight is non-positive.
    #[must_use]
    pub fn new(components: Vec<(DatasetProfile, f64)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        for (p, w) in &components {
            assert!(
                w.is_finite() && *w > 0.0,
                "mixture weight for {} must be positive, got {w}",
                p.name
            );
        }
        let total_weight = components.iter().map(|(_, w)| w).sum();
        DatasetMix {
            components,
            total_weight,
        }
    }

    /// A single-profile "mixture".
    #[must_use]
    pub fn single(profile: DatasetProfile) -> Self {
        DatasetMix::new(vec![(profile, 1.0)])
    }

    /// Fig. 16's trace: 50% Arena-Hard, 50% split evenly across MATH-500,
    /// GPQA and LiveCodeBench.
    #[must_use]
    pub fn arena_with_reasoning_heavy() -> Self {
        DatasetMix::new(vec![
            (DatasetProfile::arena_hard(), 0.5),
            (DatasetProfile::math500(), 0.5 / 3.0),
            (DatasetProfile::gpqa(), 0.5 / 3.0),
            (DatasetProfile::live_code_bench(), 0.5 / 3.0),
        ])
    }

    /// Draws the profile for the next request.
    pub fn sample_profile(&self, rng: &mut SimRng) -> &DatasetProfile {
        let mut pick = rng.uniform_f64() * self.total_weight;
        for (profile, weight) in &self.components {
            if pick < *weight {
                return profile;
            }
            pick -= weight;
        }
        // Floating-point edge: fall back to the last component.
        &self.components.last().expect("mixture is non-empty").0
    }

    /// Expected mean output tokens per request across the mixture.
    #[must_use]
    pub fn mean_output_tokens(&self) -> f64 {
        self.components
            .iter()
            .map(|(p, w)| p.mean_output_tokens() * w)
            .sum::<f64>()
            / self.total_weight
    }

    /// The component profiles and weights.
    #[must_use]
    pub fn components(&self) -> &[(DatasetProfile, f64)] {
        &self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_means_are_encoded() {
        let cases = [
            (DatasetProfile::alpaca_eval2(), 557.75, 566.85),
            (DatasetProfile::arena_hard(), 968.35, 824.02),
            (DatasetProfile::math500(), 747.20, 164.67),
            (DatasetProfile::gpqa(), 2_679.27, 316.09),
            (DatasetProfile::live_code_bench(), 1_896.64, 697.09),
        ];
        for (profile, reasoning, answering) in cases {
            assert!(
                (profile.reasoning.mean() - reasoning).abs() < 0.5,
                "{}: reasoning mean {} != {reasoning}",
                profile.name,
                profile.reasoning.mean()
            );
            assert!(
                (profile.answering.mean() - answering).abs() < 0.5,
                "{}: answering mean {} != {answering}",
                profile.name,
                profile.answering.mean()
            );
        }
    }

    #[test]
    fn gpqa_ratio_matches_papers_8_48x() {
        let gpqa = DatasetProfile::gpqa();
        let ratio = gpqa.reasoning.mean() / gpqa.answering.mean();
        assert!((ratio - 8.48).abs() < 0.02, "GPQA ratio {ratio} != 8.48");
    }

    #[test]
    fn chat_traces_are_short_reasoning_dominated() {
        // Fig. 10 caption: >70% of requests generate <1000 reasoning tokens.
        let mut rng = SimRng::seed_from(11);
        for profile in [DatasetProfile::alpaca_eval2(), DatasetProfile::arena_hard()] {
            let n = 20_000;
            let below = (0..n)
                .filter(|_| profile.reasoning.sample(&mut rng) < 1000)
                .count();
            let frac = below as f64 / f64::from(n);
            assert!(
                frac > 0.70,
                "{}: only {frac:.2} of requests below 1000 reasoning tokens",
                profile.name
            );
        }
    }

    #[test]
    fn mixture_samples_every_component() {
        let mix = DatasetMix::arena_with_reasoning_heavy();
        let mut rng = SimRng::seed_from(12);
        let mut counts = std::collections::HashMap::new();
        let n = 10_000;
        for _ in 0..n {
            *counts
                .entry(mix.sample_profile(&mut rng).name.clone())
                .or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4, "all four components drawn");
        let arena = counts["Arena-Hard"] as f64 / f64::from(n);
        assert!((arena - 0.5).abs() < 0.05, "arena fraction {arena} != 0.5");
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let mix = DatasetMix::new(vec![
            (DatasetProfile::alpaca_eval2(), 1.0),
            (DatasetProfile::arena_hard(), 1.0),
        ]);
        let expected = (DatasetProfile::alpaca_eval2().mean_output_tokens()
            + DatasetProfile::arena_hard().mean_output_tokens())
            / 2.0;
        assert!((mix.mean_output_tokens() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_weight_rejected() {
        let _ = DatasetMix::new(vec![(DatasetProfile::gpqa(), 0.0)]);
    }
}
