//! # pascal-workload — requests, datasets and trace synthesis
//!
//! Everything the PASCAL reproduction knows about *what* is being served:
//!
//! * [`RequestSpec`] / [`Phase`] — the two-phase reasoning-LLM request model
//!   of Fig. 1(b) (prefill folded into the reasoning phase, §II-D);
//! * [`TokenDist`] — token-count distributions, including clamped
//!   log-normals fitted to the paper's published dataset means;
//! * [`DatasetProfile`] / [`DatasetMix`] — AlpacaEval2.0, Arena-Hard
//!   (Fig. 8), MATH-500, GPQA, LiveCodeBench (Fig. 14) and the Fig. 16
//!   mixture;
//! * [`MixPreset`] — the named mix presets shared by the CLI, the
//!   experiments and the scenario-sweep grids;
//! * [`ArrivalProcess`] — Poisson (and deterministic) arrivals;
//! * [`TraceBuilder`] and the Fig. 4 / Fig. 5 characterization workloads.
//!
//! # Examples
//!
//! Build the Arena-Hard trace used in the paper's main evaluation:
//!
//! ```
//! use pascal_workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};
//!
//! let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::arena_hard()))
//!     .arrivals(ArrivalProcess::poisson(3.0))
//!     .count(300)
//!     .seed(42)
//!     .build();
//! assert_eq!(trace.requests().len(), 300);
//! assert!(trace.total_output_tokens() > 100_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod dataset;
mod dist;
mod presets;
mod request;
mod trace;

pub use arrivals::ArrivalProcess;
pub use dataset::{DatasetMix, DatasetProfile};
pub use dist::TokenDist;
pub use presets::MixPreset;
pub use request::{Phase, RequestId, RequestSpec};
pub use trace::{fig04_reasoning_trace, fig05_answering_trace, Trace, TraceBuilder};
