//! Request arrival processes.
//!
//! All experiments in the paper use Poisson arrivals (§III-A, Fig. 9
//! caption). [`ArrivalProcess`] also offers deterministic patterns for unit
//! tests and the Fig. 2 walkthrough.

use pascal_sim::{SimDuration, SimRng, SimTime};

/// How request submission times are generated.
///
/// # Examples
///
/// ```
/// use pascal_sim::SimRng;
/// use pascal_workload::ArrivalProcess;
///
/// let mut rng = SimRng::seed_from(9);
/// let times = ArrivalProcess::poisson(2.0).generate(1000, &mut rng);
/// assert_eq!(times.len(), 1000);
/// // Mean gap of a 2 req/s Poisson process is 0.5 s.
/// let span = (times[999] - times[0]).as_secs_f64();
/// assert!((span / 999.0 - 0.5).abs() < 0.05);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` requests/second.
    Poisson {
        /// Average arrival rate in requests per second.
        rate: f64,
    },
    /// One request every `interval`, starting at `interval`.
    Periodic {
        /// Fixed gap between consecutive arrivals.
        interval: SimDuration,
    },
    /// Every request arrives at the same instant (closed-loop stress test).
    Simultaneous {
        /// The shared arrival instant.
        at: SimTime,
    },
    /// Markov-modulated bursts: alternating ON phases (Poisson arrivals at
    /// `burst_rate`) and OFF gaps (no arrivals), with exponentially
    /// distributed phase lengths. Models the flash crowds that stress
    /// admission control harder than a smooth Poisson stream of the same
    /// average rate.
    Bursty {
        /// Arrival rate inside a burst, requests/second.
        burst_rate: f64,
        /// Mean ON-phase duration in seconds.
        mean_burst_s: f64,
        /// Mean OFF-gap duration in seconds.
        mean_gap_s: f64,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at `rate` requests/second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    #[must_use]
    pub fn poisson(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "Poisson rate must be positive, got {rate}"
        );
        ArrivalProcess::Poisson { rate }
    }

    /// Bursty arrivals averaging the same load as a Poisson process at
    /// `mean_rate`, with ON/OFF phases of the given mean lengths: during a
    /// burst the instantaneous rate is scaled up so that the long-run
    /// average stays `mean_rate`.
    ///
    /// # Panics
    ///
    /// Panics unless all three parameters are strictly positive and finite.
    #[must_use]
    pub fn bursty(mean_rate: f64, mean_burst_s: f64, mean_gap_s: f64) -> Self {
        assert!(
            mean_rate.is_finite() && mean_rate > 0.0,
            "mean rate must be positive, got {mean_rate}"
        );
        assert!(
            mean_burst_s.is_finite() && mean_burst_s > 0.0,
            "mean burst must be positive, got {mean_burst_s}"
        );
        assert!(
            mean_gap_s.is_finite() && mean_gap_s > 0.0,
            "mean gap must be positive, got {mean_gap_s}"
        );
        let duty_cycle = mean_burst_s / (mean_burst_s + mean_gap_s);
        ArrivalProcess::Bursty {
            burst_rate: mean_rate / duty_cycle,
            mean_burst_s,
            mean_gap_s,
        }
    }

    /// Generates `count` non-decreasing arrival times.
    #[must_use]
    pub fn generate(&self, count: usize, rng: &mut SimRng) -> Vec<SimTime> {
        if let ArrivalProcess::Bursty {
            burst_rate,
            mean_burst_s,
            mean_gap_s,
        } = self
        {
            return generate_bursty(count, *burst_rate, *mean_burst_s, *mean_gap_s, rng);
        }
        let mut times = Vec::with_capacity(count);
        let mut now = SimTime::ZERO;
        for _ in 0..count {
            now = match self {
                ArrivalProcess::Poisson { rate } => {
                    now + SimDuration::from_secs_f64(rng.exponential(*rate))
                }
                ArrivalProcess::Periodic { interval } => now + *interval,
                ArrivalProcess::Simultaneous { at } => *at,
                ArrivalProcess::Bursty { .. } => unreachable!("handled above"),
            };
            times.push(now);
        }
        times
    }
}

/// ON/OFF burst generator: walk through alternating exponentially long
/// phases, emitting Poisson arrivals only during ON phases.
fn generate_bursty(
    count: usize,
    burst_rate: f64,
    mean_burst_s: f64,
    mean_gap_s: f64,
    rng: &mut SimRng,
) -> Vec<SimTime> {
    let mut times = Vec::with_capacity(count);
    let mut now = 0.0f64;
    let mut burst_ends = rng.exponential(1.0 / mean_burst_s);
    while times.len() < count {
        let gap = rng.exponential(burst_rate);
        if now + gap <= burst_ends {
            now += gap;
            times.push(SimTime::from_secs_f64(now));
        } else {
            // The burst ended before the next arrival: skip the OFF gap and
            // open a fresh burst window.
            now = burst_ends + rng.exponential(1.0 / mean_gap_s);
            burst_ends = now + rng.exponential(1.0 / mean_burst_s);
        }
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn periodic_is_evenly_spaced() {
        let mut rng = SimRng::seed_from(1);
        let times = ArrivalProcess::Periodic {
            interval: SimDuration::from_secs(2),
        }
        .generate(5, &mut rng);
        let secs: Vec<f64> = times.iter().map(|t| t.as_secs_f64()).collect();
        assert_eq!(secs, vec![2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn simultaneous_all_equal() {
        let mut rng = SimRng::seed_from(1);
        let at = SimTime::from_secs_f64(3.0);
        let times = ArrivalProcess::Simultaneous { at }.generate(10, &mut rng);
        assert!(times.iter().all(|t| *t == at));
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut rng = SimRng::seed_from(2);
        let rate = 5.0;
        let n = 50_000;
        let times = ArrivalProcess::poisson(rate).generate(n, &mut rng);
        let span = (times[n - 1] - times[0]).as_secs_f64();
        let mean_gap = span / (n as f64 - 1.0);
        assert!(
            (mean_gap - 1.0 / rate).abs() < 0.01,
            "mean gap {mean_gap} != {}",
            1.0 / rate
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_rate_rejected() {
        let _ = ArrivalProcess::poisson(0.0);
    }

    #[test]
    fn bursty_long_run_rate_matches_mean() {
        let mut rng = SimRng::seed_from(5);
        let mean_rate = 10.0;
        let n = 50_000;
        let times = ArrivalProcess::bursty(mean_rate, 5.0, 5.0).generate(n, &mut rng);
        let span = (times[n - 1] - times[0]).as_secs_f64();
        let rate = (n as f64 - 1.0) / span;
        assert!(
            (rate - mean_rate).abs() / mean_rate < 0.1,
            "long-run bursty rate {rate} drifted from {mean_rate}"
        );
    }

    #[test]
    fn bursty_is_burstier_than_poisson() {
        // Compare squared-coefficient-of-variation of interarrival gaps:
        // ON/OFF modulation must exceed the Poisson value of ~1.
        let gaps = |proc: ArrivalProcess, seed: u64| -> Vec<f64> {
            let mut rng = SimRng::seed_from(seed);
            let times = proc.generate(20_000, &mut rng);
            times
                .windows(2)
                .map(|w| (w[1] - w[0]).as_secs_f64())
                .collect()
        };
        let scv = |xs: &[f64]| {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
            var / (mean * mean)
        };
        let poisson_scv = scv(&gaps(ArrivalProcess::poisson(10.0), 6));
        let bursty_scv = scv(&gaps(ArrivalProcess::bursty(10.0, 2.0, 8.0), 6));
        assert!(
            bursty_scv > poisson_scv * 1.5,
            "bursty SCV {bursty_scv:.2} not above Poisson {poisson_scv:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "mean burst must be positive")]
    fn bursty_rejects_bad_parameters() {
        let _ = ArrivalProcess::bursty(1.0, 0.0, 1.0);
    }

    proptest! {
        /// Arrival sequences are always sorted, whatever the process.
        #[test]
        fn prop_arrivals_sorted(seed in any::<u64>(), rate in 0.1f64..100.0, n in 1usize..500) {
            let mut rng = SimRng::seed_from(seed);
            let times = ArrivalProcess::poisson(rate).generate(n, &mut rng);
            prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }

        /// Bursty sequences are sorted and strictly inside ON windows.
        #[test]
        fn prop_bursty_sorted(seed in any::<u64>(), n in 1usize..300) {
            let mut rng = SimRng::seed_from(seed);
            let times = ArrivalProcess::bursty(5.0, 3.0, 3.0).generate(n, &mut rng);
            prop_assert_eq!(times.len(), n);
            prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
