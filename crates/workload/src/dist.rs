//! Token-count distributions.
//!
//! The paper's traces are token-length distributions (Fig. 8, Fig. 14)
//! obtained by querying o4-mini; we fit clamped log-normals to the published
//! means and axis ranges (see `DESIGN.md` §2). Characterization workloads
//! (Fig. 4, Fig. 5) use fixed values or uniform choices over a discrete set.

use pascal_sim::{log_normal_mu_for_mean, SimRng};

/// A distribution over token counts.
///
/// # Examples
///
/// ```
/// use pascal_sim::SimRng;
/// use pascal_workload::TokenDist;
///
/// let dist = TokenDist::log_normal_mean(557.75, 0.95, 16, 6000);
/// let mut rng = SimRng::seed_from(1);
/// let draw = dist.sample(&mut rng);
/// assert!((16..=6000).contains(&draw));
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TokenDist {
    /// Always the same count.
    Fixed(u32),
    /// Uniform over an explicit set of counts (e.g. `{128, 256, …, 2048}`).
    Choice(Vec<u32>),
    /// Uniform over an inclusive integer range.
    Uniform {
        /// Smallest value (inclusive).
        lo: u32,
        /// Largest value (inclusive).
        hi: u32,
    },
    /// Log-normal with underlying parameters `mu`/`sigma`, clamped into
    /// `[min, max]`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
        /// Clamp floor (inclusive).
        min: u32,
        /// Clamp ceiling (inclusive).
        max: u32,
    },
}

impl TokenDist {
    /// A log-normal fitted so its (unclamped) mean equals `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`, `sigma < 0`, or `min > max`.
    #[must_use]
    pub fn log_normal_mean(mean: f64, sigma: f64, min: u32, max: u32) -> Self {
        assert!(min <= max, "log_normal_mean requires min <= max");
        TokenDist::LogNormal {
            mu: log_normal_mu_for_mean(mean, sigma),
            sigma,
            min,
            max,
        }
    }

    /// Draws one token count.
    ///
    /// # Panics
    ///
    /// Panics if a [`TokenDist::Choice`] is empty or a
    /// [`TokenDist::Uniform`] has `lo > hi`.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match self {
            TokenDist::Fixed(v) => *v,
            TokenDist::Choice(set) => *rng.choose(set),
            TokenDist::Uniform { lo, hi } => {
                rng.uniform_range(u64::from(*lo), u64::from(*hi)) as u32
            }
            TokenDist::LogNormal {
                mu,
                sigma,
                min,
                max,
            } => {
                let draw = rng.log_normal(*mu, *sigma).round();
                (draw.clamp(f64::from(*min), f64::from(*max))) as u32
            }
        }
    }

    /// Analytic mean of the distribution (ignoring clamping for the
    /// log-normal case — the presets keep clamp mass negligible).
    #[must_use]
    pub fn mean(&self) -> f64 {
        match self {
            TokenDist::Fixed(v) => f64::from(*v),
            TokenDist::Choice(set) => {
                set.iter().map(|v| f64::from(*v)).sum::<f64>() / set.len() as f64
            }
            TokenDist::Uniform { lo, hi } => (f64::from(*lo) + f64::from(*hi)) / 2.0,
            TokenDist::LogNormal { mu, sigma, .. } => (mu + sigma * sigma / 2.0).exp(),
        }
    }

    /// Largest value the distribution can produce.
    #[must_use]
    pub fn max_value(&self) -> u32 {
        match self {
            TokenDist::Fixed(v) => *v,
            TokenDist::Choice(set) => set.iter().copied().max().unwrap_or(0),
            TokenDist::Uniform { hi, .. } => *hi,
            TokenDist::LogNormal { max, .. } => *max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_always_same() {
        let mut rng = SimRng::seed_from(1);
        let d = TokenDist::Fixed(128);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 128);
        }
        assert_eq!(d.mean(), 128.0);
    }

    #[test]
    fn choice_covers_all_options() {
        let mut rng = SimRng::seed_from(2);
        let set = vec![128, 256, 512, 1024, 2048];
        let d = TokenDist::Choice(set.clone());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(d.sample(&mut rng));
        }
        assert_eq!(seen.len(), set.len());
        assert!((d.mean() - 793.6).abs() < 1e-9);
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = SimRng::seed_from(3);
        let d = TokenDist::Uniform { lo: 128, hi: 2048 };
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((128..=2048).contains(&v));
        }
    }

    #[test]
    fn log_normal_empirical_mean_tracks_target() {
        let mut rng = SimRng::seed_from(4);
        let d = TokenDist::log_normal_mean(968.35, 1.0, 16, 15_000);
        let n = 100_000;
        let mean = (0..n).map(|_| f64::from(d.sample(&mut rng))).sum::<f64>() / f64::from(n);
        assert!(
            (mean - 968.35).abs() / 968.35 < 0.05,
            "empirical mean {mean} too far from 968.35"
        );
    }

    #[test]
    fn max_value_reported() {
        assert_eq!(TokenDist::Fixed(5).max_value(), 5);
        assert_eq!(TokenDist::Choice(vec![1, 9, 3]).max_value(), 9);
        assert_eq!(TokenDist::Uniform { lo: 1, hi: 7 }.max_value(), 7);
        assert_eq!(
            TokenDist::log_normal_mean(100.0, 0.5, 1, 999).max_value(),
            999
        );
    }

    proptest! {
        #[test]
        fn prop_log_normal_respects_clamp(
            seed in any::<u64>(),
            mean in 10.0f64..5000.0,
            sigma in 0.1f64..1.5,
        ) {
            let mut rng = SimRng::seed_from(seed);
            let d = TokenDist::log_normal_mean(mean, sigma, 16, 8000);
            let v = d.sample(&mut rng);
            prop_assert!((16..=8000).contains(&v));
        }

        #[test]
        fn prop_uniform_mean_is_midpoint(lo in 0u32..1000, width in 0u32..1000) {
            let d = TokenDist::Uniform { lo, hi: lo + width };
            prop_assert!((d.mean() - (f64::from(lo) + f64::from(width) / 2.0)).abs() < 1e-9);
        }
    }
}
