//! Inference requests and their two-phase structure.
//!
//! A reasoning-LLM request (Fig. 1(b)) consists of a prompt, a *reasoning*
//! phase that decodes hidden chain-of-thought tokens (terminated by the
//! `</think>` boundary token) and an *answering* phase that decodes the
//! user-visible tokens. The paper folds the prefill stage into the reasoning
//! phase (§II-D), and so does this crate.

use pascal_sim::SimTime;

/// Unique identifier of a request within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// The two decoding phases of a reasoning-based LLM request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Phase {
    /// Prefill plus hidden chain-of-thought decoding; latency here is TTFT.
    Reasoning,
    /// User-visible token decoding; throughput here is TPOT/QoE.
    Answering,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Reasoning => f.write_str("reasoning"),
            Phase::Answering => f.write_str("answering"),
        }
    }
}

/// Immutable description of one inference request in a trace.
///
/// Token-count conventions:
///
/// * `prompt_tokens` are processed by the prefill pass. The prefill pass
///   itself emits the first output token (vLLM semantics).
/// * `reasoning_tokens` counts all hidden tokens **including** the boundary
///   token (`</think>`); the request is in [`Phase::Reasoning`] until the
///   last of them is produced.
/// * `answering_tokens` counts user-visible tokens. A value of zero models
///   characterization workloads that stop at the phase boundary (Fig. 4).
///
/// # Examples
///
/// ```
/// use pascal_sim::SimTime;
/// use pascal_workload::{RequestId, RequestSpec};
///
/// let req = RequestSpec::new(RequestId(0), SimTime::ZERO, 128, 512, 256);
/// assert_eq!(req.output_tokens(), 768);
/// assert_eq!(req.decode_steps(), 767); // prefill emits the first token
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestSpec {
    /// Trace-unique id.
    pub id: RequestId,
    /// Submission time.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Hidden reasoning tokens, including the phase-boundary token.
    pub reasoning_tokens: u32,
    /// User-visible answering tokens.
    pub answering_tokens: u32,
    /// When `true`, the KV cache of the prompt already exists (no prefill
    /// compute) and the request starts directly in [`Phase::Answering`] —
    /// the setup of the paper's answering-phase characterization (Fig. 5).
    pub warm_start: bool,
    /// Name of the dataset profile the request was drawn from, when known.
    /// Length predictors use it as the conditioning key for per-dataset
    /// statistics; it is metadata only and never influences the engine.
    pub dataset: Option<std::sync::Arc<str>>,
    /// Geographic region the request originated from. Single-region
    /// deployments leave it at `0`; a federated deployment's region router
    /// reads it to prefer serving near the user. Indices beyond the
    /// deployment's region count are clamped by the engine.
    pub origin_region: u32,
}

impl RequestSpec {
    /// Creates a cold request that goes through prefill and both phases.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_tokens` is zero, or if both decode phases are empty.
    #[must_use]
    pub fn new(
        id: RequestId,
        arrival: SimTime,
        prompt_tokens: u32,
        reasoning_tokens: u32,
        answering_tokens: u32,
    ) -> Self {
        assert!(prompt_tokens > 0, "a request needs a non-empty prompt");
        assert!(
            reasoning_tokens + answering_tokens > 0,
            "a request must generate at least one token"
        );
        RequestSpec {
            id,
            arrival,
            prompt_tokens,
            reasoning_tokens,
            answering_tokens,
            warm_start: false,
            dataset: None,
            origin_region: 0,
        }
    }

    /// Tags the request with the dataset profile it was drawn from.
    #[must_use]
    pub fn with_dataset(mut self, name: &str) -> Self {
        self.dataset = Some(std::sync::Arc::from(name));
        self
    }

    /// Tags the request with the region it originated from.
    #[must_use]
    pub fn with_origin_region(mut self, region: u32) -> Self {
        self.origin_region = region;
        self
    }

    /// The dataset tag, or `"?"` for untagged requests — the conditioning
    /// key length predictors bucket their statistics by.
    #[must_use]
    pub fn dataset_key(&self) -> &str {
        self.dataset.as_deref().unwrap_or("?")
    }

    /// Creates a warm request whose prompt/reasoning KV (`context_tokens`)
    /// is materialized on admission without prefill compute, entering the
    /// answering phase immediately — Fig. 5's setup.
    ///
    /// # Panics
    ///
    /// Panics if `context_tokens` or `answering_tokens` is zero.
    #[must_use]
    pub fn warm(
        id: RequestId,
        arrival: SimTime,
        context_tokens: u32,
        answering_tokens: u32,
    ) -> Self {
        assert!(context_tokens > 0, "warm requests need existing context");
        assert!(answering_tokens > 0, "warm requests must answer");
        RequestSpec {
            id,
            arrival,
            prompt_tokens: context_tokens,
            reasoning_tokens: 0,
            answering_tokens,
            warm_start: true,
            dataset: None,
            origin_region: 0,
        }
    }

    /// Phase the request is in when it enters the system.
    #[must_use]
    pub fn initial_phase(&self) -> Phase {
        if self.reasoning_tokens > 0 {
            Phase::Reasoning
        } else {
            Phase::Answering
        }
    }

    /// Total generated (output) tokens: reasoning plus answering.
    #[must_use]
    pub fn output_tokens(&self) -> u32 {
        self.reasoning_tokens + self.answering_tokens
    }

    /// Number of decode iterations the request needs. Cold requests get
    /// their first output token from the prefill pass; warm requests decode
    /// every answering token.
    #[must_use]
    pub fn decode_steps(&self) -> u32 {
        if self.warm_start {
            self.answering_tokens
        } else {
            self.output_tokens().saturating_sub(1)
        }
    }

    /// Final context length (tokens of KV) when the request completes.
    #[must_use]
    pub fn final_context_tokens(&self) -> u64 {
        u64::from(self.prompt_tokens) + u64::from(self.output_tokens())
    }

    /// Phase of the `n`-th output token (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`Self::output_tokens`].
    #[must_use]
    pub fn phase_of_output_token(&self, n: u32) -> Phase {
        assert!(
            n >= 1 && n <= self.output_tokens(),
            "token index {n} out of 1..={}",
            self.output_tokens()
        );
        if n <= self.reasoning_tokens {
            Phase::Reasoning
        } else {
            Phase::Answering
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(reason: u32, answer: u32) -> RequestSpec {
        RequestSpec::new(RequestId(1), SimTime::ZERO, 128, reason, answer)
    }

    #[test]
    fn cold_request_counts() {
        let r = spec(512, 256);
        assert_eq!(r.output_tokens(), 768);
        assert_eq!(r.decode_steps(), 767);
        assert_eq!(r.final_context_tokens(), 128 + 768);
        assert_eq!(r.initial_phase(), Phase::Reasoning);
    }

    #[test]
    fn warm_request_counts() {
        let r = RequestSpec::warm(RequestId(2), SimTime::ZERO, 128, 100);
        assert_eq!(r.decode_steps(), 100);
        assert_eq!(r.initial_phase(), Phase::Answering);
        assert_eq!(r.final_context_tokens(), 228);
    }

    #[test]
    fn reasoning_only_request_allowed() {
        let r = spec(128, 0);
        assert_eq!(r.output_tokens(), 128);
        assert_eq!(r.decode_steps(), 127);
    }

    #[test]
    fn phase_boundary_is_last_reasoning_token() {
        let r = spec(3, 2);
        assert_eq!(r.phase_of_output_token(3), Phase::Reasoning);
        assert_eq!(r.phase_of_output_token(4), Phase::Answering);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_request_rejected() {
        let _ = spec(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn token_index_validated() {
        let _ = spec(2, 2).phase_of_output_token(5);
    }

    #[test]
    fn origin_region_defaults_to_zero_and_tags() {
        let r = spec(10, 10);
        assert_eq!(r.origin_region, 0);
        assert_eq!(r.with_origin_region(3).origin_region, 3);
        let warm = RequestSpec::warm(RequestId(9), SimTime::ZERO, 64, 8);
        assert_eq!(warm.origin_region, 0);
    }

    #[test]
    fn display_impls_nonempty() {
        assert_eq!(RequestId(7).to_string(), "req#7");
        assert_eq!(Phase::Reasoning.to_string(), "reasoning");
        assert_eq!(Phase::Answering.to_string(), "answering");
    }
}
