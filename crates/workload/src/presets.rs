//! Named workload-mix presets.
//!
//! Every evaluation surface — the CLI, the experiments and the scenario
//! sweep grids — selects workloads by the same short names, so a sweep
//! cell's JSON row, a CLI flag and an experiment table all agree on what
//! "arena" means. A preset is a copyable key; [`MixPreset::mix`] expands it
//! to the concrete [`DatasetMix`] on demand.

use crate::dataset::{DatasetMix, DatasetProfile};

/// A named workload mixture.
///
/// # Examples
///
/// ```
/// use pascal_workload::MixPreset;
///
/// let preset = MixPreset::parse("arena").unwrap();
/// assert_eq!(preset.display_name(), "Arena-Hard");
/// assert_eq!(preset.mix().components().len(), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MixPreset {
    /// AlpacaEval2.0 — the lighter chat trace (Fig. 8(a)).
    Alpaca,
    /// Arena-Hard — the heavier chat trace (Fig. 8(b)).
    Arena,
    /// MATH-500 (Fig. 14(a)).
    Math500,
    /// GPQA — the 8.48× reasoning-heavy extreme (Fig. 14(b)).
    Gpqa,
    /// LiveCodeBench (Fig. 14(c)).
    Lcb,
    /// Fig. 16's mixture: 50% Arena-Hard, 50% reasoning-heavy.
    Mixed,
    /// MATH-500, GPQA and LiveCodeBench in equal parts — the workload whose
    /// oversized reasoning tails make speculative demotion bite.
    ReasoningHeavy,
}

impl MixPreset {
    /// All presets, in presentation order.
    pub const ALL: [MixPreset; 7] = [
        MixPreset::Alpaca,
        MixPreset::Arena,
        MixPreset::Math500,
        MixPreset::Gpqa,
        MixPreset::Lcb,
        MixPreset::Mixed,
        MixPreset::ReasoningHeavy,
    ];

    /// The short CLI/JSON key.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            MixPreset::Alpaca => "alpaca",
            MixPreset::Arena => "arena",
            MixPreset::Math500 => "math500",
            MixPreset::Gpqa => "gpqa",
            MixPreset::Lcb => "lcb",
            MixPreset::Mixed => "mixed",
            MixPreset::ReasoningHeavy => "reasoning-heavy",
        }
    }

    /// The name the paper's figures use for this workload.
    #[must_use]
    pub fn display_name(self) -> &'static str {
        match self {
            MixPreset::Alpaca => "AlpacaEval2.0",
            MixPreset::Arena => "Arena-Hard",
            MixPreset::Math500 => "MATH-500",
            MixPreset::Gpqa => "GPQA",
            MixPreset::Lcb => "LiveCodeBench",
            MixPreset::Mixed => "Arena-Hard + reasoning-heavy",
            MixPreset::ReasoningHeavy => "Reasoning-Heavy",
        }
    }

    /// Expands the preset to its concrete mixture.
    #[must_use]
    pub fn mix(self) -> DatasetMix {
        match self {
            MixPreset::Alpaca => DatasetMix::single(DatasetProfile::alpaca_eval2()),
            MixPreset::Arena => DatasetMix::single(DatasetProfile::arena_hard()),
            MixPreset::Math500 => DatasetMix::single(DatasetProfile::math500()),
            MixPreset::Gpqa => DatasetMix::single(DatasetProfile::gpqa()),
            MixPreset::Lcb => DatasetMix::single(DatasetProfile::live_code_bench()),
            MixPreset::Mixed => DatasetMix::arena_with_reasoning_heavy(),
            MixPreset::ReasoningHeavy => DatasetMix::new(
                DatasetProfile::reasoning_heavy_suite()
                    .into_iter()
                    .map(|p| (p, 1.0))
                    .collect(),
            ),
        }
    }

    /// Parses a CLI-style key.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid keys.
    pub fn parse(s: &str) -> Result<MixPreset, String> {
        MixPreset::ALL
            .into_iter()
            .find(|p| p.key() == s)
            .ok_or_else(|| {
                let keys: Vec<&str> = MixPreset::ALL.iter().map(|p| p.key()).collect();
                format!("unknown dataset '{s}' (valid: {})", keys.join(", "))
            })
    }
}

impl std::fmt::Display for MixPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip_through_parse() {
        for preset in MixPreset::ALL {
            assert_eq!(MixPreset::parse(preset.key()), Ok(preset));
        }
        let err = MixPreset::parse("nope").expect_err("unknown preset");
        assert!(err.contains("reasoning-heavy"), "error lists keys: {err}");
    }

    #[test]
    fn every_preset_expands_to_a_valid_mix() {
        for preset in MixPreset::ALL {
            let mix = preset.mix();
            assert!(!mix.components().is_empty(), "{preset}");
            assert!(mix.mean_output_tokens() > 0.0, "{preset}");
        }
    }

    #[test]
    fn reasoning_heavy_is_the_three_suite_profiles() {
        let mix = MixPreset::ReasoningHeavy.mix();
        let names: Vec<&str> = mix
            .components()
            .iter()
            .map(|(p, _)| p.name.as_str())
            .collect();
        assert_eq!(names, vec!["MATH-500", "GPQA", "LiveCodeBench"]);
    }
}
