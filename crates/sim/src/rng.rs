//! Deterministic random sampling for workload synthesis.
//!
//! All stochastic inputs of the simulator (arrival gaps, token lengths,
//! tie-breaks) flow through [`SimRng`], a seeded PRNG with convenience
//! samplers. The generator is a self-contained xoshiro256** (seeded through
//! SplitMix64), so the crate has no external dependencies and the streams
//! are identical on every platform. The heavier distributions the paper's
//! traces need — normal, log-normal, exponential — are implemented here
//! (Box–Muller and inverse-CDF).

/// A seeded pseudo-random source with the samplers the workloads need.
///
/// Two `SimRng`s created from the same seed produce identical streams, which
/// makes entire simulations reproducible from a single `u64`.
///
/// # Examples
///
/// ```
/// use pascal_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step — the recommended seeder for xoshiro state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child generator; `label` decorrelates children
    /// split from the same parent seed.
    ///
    /// Splitting is used to give each workload/dataset/instance its own
    /// stream so that adding one more consumer does not perturb the others.
    #[must_use]
    pub fn split(&mut self, label: u64) -> SimRng {
        let s = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// The next raw 64 uniform bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 random mantissa bits — the standard open-interval construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[lo, hi]` (inclusive), free of modulo bias
    /// (rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_range requires lo <= hi, got {lo} > {hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        // 2^64 mod n, computed in u64 arithmetic.
        let m = (u64::MAX % n).wrapping_add(1) % n;
        if m == 0 {
            return lo + self.next_u64() % n;
        }
        let limit = 0u64.wrapping_sub(m); // = 2^64 - m
        loop {
            let v = self.next_u64();
            if v < limit {
                return lo + v % n;
            }
        }
    }

    /// Picks a uniformly random element of `choices`.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn choose<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        assert!(!choices.is_empty(), "choose requires a non-empty slice");
        let idx = self.uniform_range(0, choices.len() as u64 - 1) as usize;
        &choices[idx]
    }

    /// A standard normal draw (Box–Muller; one of the pair is discarded to
    /// keep the stream simple and stateless).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging the uniform off zero.
        let u1 = self.uniform_f64().max(f64::MIN_POSITIVE);
        let u2 = self.uniform_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A log-normal draw with the given *underlying* normal parameters.
    ///
    /// The resulting distribution has mean `exp(mu + sigma^2 / 2)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or the parameters are not finite.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "log_normal requires finite mu and non-negative sigma"
        );
        (mu + sigma * self.standard_normal()).exp()
    }

    /// An exponential draw with the given rate (mean `1 / rate`), via
    /// inverse-CDF.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential requires a positive finite rate, got {rate}"
        );
        let u = (1.0 - self.uniform_f64()).max(f64::MIN_POSITIVE);
        -u.ln() / rate
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.uniform_range(0, i as u64) as usize;
            xs.swap(i, j);
        }
    }
}

/// Solves for the log-normal `mu` that yields a target mean under a given
/// `sigma`: `mu = ln(mean) - sigma^2 / 2`.
///
/// This is how dataset profiles are fitted to the paper's published means.
///
/// # Panics
///
/// Panics if `mean` is not strictly positive or `sigma` is negative.
///
/// # Examples
///
/// ```
/// use pascal_sim::log_normal_mu_for_mean;
///
/// let mu = log_normal_mu_for_mean(557.75, 0.8);
/// let reconstructed_mean = (mu + 0.8f64 * 0.8 / 2.0).exp();
/// assert!((reconstructed_mean - 557.75).abs() < 1e-9);
/// ```
#[must_use]
pub fn log_normal_mu_for_mean(mean: f64, sigma: f64) -> f64 {
    assert!(
        mean.is_finite() && mean > 0.0 && sigma.is_finite() && sigma >= 0.0,
        "log_normal_mu_for_mean requires mean > 0 and sigma >= 0"
    );
    mean.ln() - sigma * sigma / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_differ_by_label() {
        let mut root = SimRng::seed_from(7);
        let mut c1 = root.clone().split(1);
        let mut c2 = root.split(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10_000 {
            let u = rng.uniform_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_range_hits_bounds() {
        let mut rng = SimRng::seed_from(2);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match rng.uniform_range(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                other => panic!("out of range draw: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from(3);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "normal mean drifted: {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal variance drifted: {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed_from(4);
        let rate = 2.5;
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "exp mean drifted: {mean}");
    }

    #[test]
    fn log_normal_mean_matches_fit() {
        let mut rng = SimRng::seed_from(5);
        let (target_mean, sigma) = (557.75, 0.8);
        let mu = log_normal_mu_for_mean(target_mean, sigma);
        let n = 200_000;
        let mean = (0..n).map(|_| rng.log_normal(mu, sigma)).sum::<f64>() / n as f64;
        assert!(
            (mean - target_mean).abs() / target_mean < 0.02,
            "log-normal mean drifted: {mean} vs {target_mean}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(6);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    // Property-style sweeps over many seeds and parameters (the offline
    // workspace carries no proptest; exhaustive seeded loops stand in).

    #[test]
    fn prop_exponential_nonnegative() {
        let mut meta = SimRng::seed_from(0xE4B);
        for _ in 0..256 {
            let seed = meta.next_u64();
            let rate = 0.01 + meta.uniform_f64() * 99.99;
            let mut rng = SimRng::seed_from(seed);
            assert!(rng.exponential(rate) >= 0.0);
        }
    }

    #[test]
    fn prop_log_normal_positive() {
        let mut meta = SimRng::seed_from(0x109);
        for _ in 0..256 {
            let seed = meta.next_u64();
            let mu = -3.0 + meta.uniform_f64() * 13.0;
            let sigma = meta.uniform_f64() * 2.0;
            let mut rng = SimRng::seed_from(seed);
            assert!(rng.log_normal(mu, sigma) > 0.0);
        }
    }

    #[test]
    fn prop_uniform_range_within_bounds() {
        let mut meta = SimRng::seed_from(0x0B5);
        for _ in 0..256 {
            let seed = meta.next_u64();
            let lo = meta.uniform_range(0, 999);
            let hi = lo + meta.uniform_range(0, 999);
            let mut rng = SimRng::seed_from(seed);
            let draw = rng.uniform_range(lo, hi);
            assert!((lo..=hi).contains(&draw));
        }
    }

    #[test]
    fn uniform_range_full_span_and_degenerate() {
        let mut rng = SimRng::seed_from(8);
        assert_eq!(rng.uniform_range(7, 7), 7);
        let _ = rng.uniform_range(0, u64::MAX); // must not overflow
    }
}
