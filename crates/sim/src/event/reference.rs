//! The reference `BinaryHeap` future-event list.
//!
//! [`HeapEventQueue`] is the pre-calendar-queue implementation of the
//! [`EventQueue`](super::EventQueue) contract, kept as the **executable
//! specification** of the `(time, sequence)` total order and the
//! cancellation semantics. It exists for two consumers:
//!
//! * the property test proving the calendar queue pops in exactly the same
//!   order on arbitrary interleaved schedule/cancel/pop sequences, and
//! * the queue-op microbenchmarks comparing old-vs-new cost at matched
//!   pending-event populations.
//!
//! It is intentionally the simple, obviously-correct version: a max-heap on
//! reversed `(time, seq)` plus live/cancelled id sets. Do not optimise it —
//! its value is being trivially auditable.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifier of an event scheduled on a [`HeapEventQueue`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HeapEventId(u64);

/// Heap entry: ordered by `(time, seq)` ascending.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The reference future-event list: `BinaryHeap` + id `HashSet`s.
///
/// Same observable API and semantics as
/// [`EventQueue`](super::EventQueue); see the module docs for why it is
/// kept around.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<(HeapEventId, E)>>,
    /// Ids scheduled but neither fired nor cancelled yet.
    live: HashSet<HeapEventId>,
    cancelled: HashSet<HeapEventId>,
    /// Ids scheduled as barrier events.
    barriers: HashSet<HeapEventId>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for HeapEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            barriers: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `time` and returns a cancellation handle.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Self::now`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> HeapEventId {
        assert!(
            time >= self.now,
            "cannot schedule an event at {time:?} before current time {:?}",
            self.now
        );
        let id = HeapEventId(self.next_seq);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            payload: (id, payload),
        });
        self.live.insert(id);
        self.next_seq += 1;
        id
    }

    /// Schedules `payload` as a barrier event (see
    /// [`EventQueue::schedule_barrier`](super::EventQueue::schedule_barrier)).
    pub fn schedule_barrier(&mut self, time: SimTime, payload: E) -> HeapEventId {
        let id = self.schedule(time, payload);
        self.barriers.insert(id);
        id
    }

    /// Schedules `payload`, flagged as a barrier when `barrier` is true.
    pub fn schedule_flagged(&mut self, time: SimTime, payload: E, barrier: bool) -> HeapEventId {
        if barrier {
            self.schedule_barrier(time, payload)
        } else {
            self.schedule(time, payload)
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    pub fn cancel(&mut self, id: HeapEventId) -> bool {
        if self.live.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Pops the earliest pending event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let (id, payload) = entry.payload;
            if self.cancelled.remove(&id) {
                continue;
            }
            self.live.remove(&id);
            debug_assert!(entry.time >= self.now, "event queue went back in time");
            self.now = entry.time;
            return Some((entry.time, payload));
        }
        None
    }

    /// The timestamp of the next pending (non-cancelled) event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            let (id, _) = entry.payload;
            if self.cancelled.contains(&id) {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.payload.0);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Whether the next pending event (the one [`Self::pop`] would
    /// return) is a barrier.
    pub fn peek_is_barrier(&mut self) -> bool {
        if self.peek_time().is_none() {
            return false;
        }
        self.heap
            .peek()
            .is_some_and(|e| self.barriers.contains(&e.payload.0))
    }

    /// The timestamp of the earliest pending (non-cancelled) barrier
    /// event, if any. The obviously-correct O(n) scan — this is the spec,
    /// not the fast path.
    pub fn peek_barrier_time(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|e| self.live.contains(&e.payload.0) && self.barriers.contains(&e.payload.0))
            .map(|e| e.time)
            .min()
    }

    /// Number of pending events; cancelled entries are not counted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
