//! A deterministic future-event list.
//!
//! [`EventQueue`] is a priority queue of `(time, payload)` pairs. Scheduled
//! events can be cancelled by the [`EventId`] returned at insertion time.
//!
//! # Ordering contract
//!
//! Every schedule is stamped with a monotonically increasing **sequence
//! number**, and pops follow the strict total order **`(time, sequence)`
//! ascending** — never the queue's internal layout. Consequences callers may
//! rely on:
//!
//! * events that share a timestamp pop in insertion order (FIFO), even
//!   when scheduling interleaves with popping;
//! * the order is a *total* order: two distinct events never compare equal,
//!   so a simulation's event trace is a pure function of its schedule
//!   calls.
//!
//! This contract is what the sharded engine's interleaving discipline rests
//! on: each shard's queue replays identically in isolation, and the
//! cluster's cross-shard tie-break (arrivals first, then lowest shard id)
//! composes with `(time, sequence)` into a total order over the whole
//! cluster — which is why a one-shard cluster is byte-identical to the
//! pre-sharding engine and an N-shard run is reproducible at any thread
//! count.
//!
//! # Implementation
//!
//! The queue is a **calendar queue** (Brown 1988) rather than a binary
//! heap. Time is divided into width-`2^shift`-nanosecond *days* (buckets);
//! `nbuckets` days make a *year*. An event is filed into bucket
//! `(t >> shift) & (nbuckets - 1)` — its day, whatever its year — so
//! scheduling is a shift-and-mask plus a `Vec::push`.
//!
//! Popping walks the calendar: the cursor bucket's entries that fall inside
//! the current day are extracted, sorted once, and drained from the back as
//! a *ready run* — so bursts of same-timestamp events are batch-sorted and
//! then popped at `Vec::pop` cost, and new events scheduled inside the
//! already-open day merge into the run by binary insertion. The calendar
//! re-sizes around the surviving population (bucket count tracks the
//! number of pending events, day width tracks their span) on two
//! triggers: when a whole year passes without an eligible event (the
//! queue thinned out or its times jumped ahead), and — Brown's occupancy
//! rule — when the live population outgrows the bucket count 2:1, so a
//! dense queue cannot degenerate into a few giant buckets.
//!
//! Cancellation is O(1) without hashing: every pending event owns a slot in
//! a generation-stamped slot table and [`EventId`] packs `(slot, generation)`.
//! Cancelled entries become tombstones that are *compacted*, not carried for
//! the run's lifetime: they are purged when their bucket is opened, when
//! they surface at the back of the ready run, and wholesale whenever
//! tombstones outnumber live events — so memory tracks the live population,
//! not the cancellation history.

//! # Barrier events
//!
//! A scheduled event may be flagged as a **barrier**
//! ([`EventQueue::schedule_barrier`]): an event whose handling can reach
//! beyond its own scheduling domain (in the engine: cross-shard or
//! cross-region landings, fleet transitions, autoscaler ticks, and batch
//! completions that may fire a phase transition). Barriers pop exactly
//! like ordinary events; additionally the queue maintains a secondary
//! min-heap over them so a windowed parallel executor can ask, in O(1),
//! for the earliest pending barrier ([`EventQueue::peek_barrier_time`]) —
//! the lookahead bound below which every pending event is safe to drain
//! without global coordination. Cancelled barriers are removed lazily
//! (a dead-set consulted when they surface at the heap top).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

pub mod reference;

/// Identifier of a scheduled event, used for cancellation.
///
/// Packs the event's slot index and the slot's generation at allocation
/// time, so a handle to an event that has fired (or been cancelled and
/// reaped) can never alias a later event that reuses the slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, generation: u32) -> Self {
        EventId((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A pending event: the `(time, seq)` pair is its position in the total
/// order, `slot` points at its cancellation slot.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    slot: u32,
    /// Whether this event is a barrier (see the module docs): tracked in
    /// the secondary barrier heap for `peek_barrier_time`.
    barrier: bool,
    payload: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Free,
    Live,
    Cancelled,
}

/// Cancellation slot: `generation` advances every time the slot is reaped,
/// invalidating any [`EventId`] minted for a prior occupant.
#[derive(Clone, Copy)]
struct Slot {
    generation: u32,
    state: SlotState,
    /// The occupant's sequence number and barrier flag — needed at
    /// cancellation time to mark the barrier-heap entry dead.
    seq: u64,
    barrier: bool,
}

/// Initial day width: `2^20` ns ≈ 1 ms.
const INITIAL_SHIFT: u32 = 20;
/// Initial calendar size; re-sized to track the live population.
const INITIAL_BUCKETS: usize = 16;
/// Calendar size ceiling — beyond this, wider days are used instead.
const MAX_BUCKETS: usize = 1 << 16;
/// Compaction slack: a wholesale tombstone sweep runs only once tombstones
/// exceed `live + COMPACT_SLACK`, so small queues never churn.
const COMPACT_SLACK: usize = 32;

/// The future-event list of a discrete-event simulation.
///
/// # Examples
///
/// ```
/// use pascal_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), e), (10, "early"));
/// ```
pub struct EventQueue<E> {
    /// The open day's batch: entries with `time < day_start`, sorted
    /// **descending** by `(time, seq)` and popped from the back.
    ready: Vec<Entry<E>>,
    /// The calendar: bucket `(t >> shift) & (buckets.len() - 1)` holds every
    /// pending entry whose day is congruent to it, whatever the year.
    buckets: Vec<Vec<Entry<E>>>,
    /// log2 of the day width in nanoseconds.
    shift: u32,
    /// Exclusive upper bound of the open day, a multiple of the day width.
    /// No pending bucket entry is earlier; entries below it live in `ready`.
    day_start: u64,
    /// Cancellation slots, indexed by `EventId::slot`.
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    /// Entries still physically present whose slot has been cancelled.
    tombstones: usize,
    /// Pending (scheduled, not fired, not cancelled) events.
    live: usize,
    /// Secondary min-heap over pending barrier events, by `(time, seq)`.
    barriers: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Sequence numbers of cancelled barriers still in `barriers`,
    /// skimmed lazily when they surface at the heap top.
    dead_barriers: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            ready: Vec::new(),
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            shift: INITIAL_SHIFT,
            day_start: 0,
            slots: Vec::new(),
            free_slots: Vec::new(),
            tombstones: 0,
            live: 0,
            barriers: BinaryHeap::new(),
            dead_barriers: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn width(&self) -> u64 {
        1u64 << self.shift
    }

    fn alloc_slot(&mut self, seq: u64, barrier: bool) -> (u32, u32) {
        if let Some(slot) = self.free_slots.pop() {
            let s = &mut self.slots[slot as usize];
            s.state = SlotState::Live;
            s.seq = seq;
            s.barrier = barrier;
            (slot, s.generation)
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                state: SlotState::Live,
                seq,
                barrier,
            });
            (slot, 0)
        }
    }

    /// Reaps a slot after its entry is physically gone (fired or purged),
    /// bumping the generation so stale [`EventId`]s cannot alias the next
    /// occupant.
    fn reap_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.state = SlotState::Free;
        s.generation = s.generation.wrapping_add(1);
        self.free_slots.push(slot);
    }

    fn slot_cancelled(&self, slot: u32) -> bool {
        self.slots[slot as usize].state == SlotState::Cancelled
    }

    /// Schedules `payload` to fire at `time` and returns a cancellation handle.
    ///
    /// Scheduling in the past is a logic error.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Self::now`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        self.schedule_impl(time, payload, false)
    }

    /// Schedules `payload` as a **barrier** event (see the module docs):
    /// identical pop behaviour, but additionally tracked so
    /// [`Self::peek_barrier_time`] can report the earliest pending barrier
    /// in O(1).
    pub fn schedule_barrier(&mut self, time: SimTime, payload: E) -> EventId {
        self.schedule_impl(time, payload, true)
    }

    /// Schedules `payload`, flagged as a barrier when `barrier` is true —
    /// for call sites that decide the classification dynamically.
    pub fn schedule_flagged(&mut self, time: SimTime, payload: E, barrier: bool) -> EventId {
        self.schedule_impl(time, payload, barrier)
    }

    fn schedule_impl(&mut self, time: SimTime, payload: E, barrier: bool) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule an event at {time:?} before current time {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, generation) = self.alloc_slot(seq, barrier);
        self.live += 1;
        if barrier {
            self.barriers.push(Reverse((time, seq)));
        }
        let entry = Entry {
            time,
            seq,
            slot,
            barrier,
            payload,
        };
        let t = time.as_nanos();
        if t < self.day_start {
            // Inside the already-open day: merge into the sorted ready run.
            // `seq` is larger than every pending event's, so among equal
            // timestamps the new entry lands closest to the front (fires
            // last) — FIFO holds.
            let key = (time, seq);
            let at = self.ready.partition_point(|e| e.key() > key);
            self.ready.insert(at, entry);
        } else {
            let mask = self.buckets.len() - 1;
            let idx = ((t >> self.shift) as usize) & mask;
            self.buckets[idx].push(entry);
            self.maybe_grow();
        }
        EventId::new(slot, generation)
    }

    /// Brown-style occupancy trigger: grows the calendar once the live
    /// population outnumbers the buckets 2:1. The empty-year rebuild in
    /// `refill_ready` only fires when the queue *thins out*; a dense queue
    /// that keeps every day occupied would otherwise stay on its current
    /// calendar forever, degenerate into a few giant buckets, and pay an
    /// O(population) ready-run insert on every same-day schedule. Runs only
    /// while the ready run is drained — the state `rebuild` expects — and
    /// amortizes to O(1) per schedule by the usual doubling argument.
    fn maybe_grow(&mut self) {
        if self.ready.is_empty()
            && self.live > 2 * self.buckets.len()
            && self.buckets.len() < MAX_BUCKETS
        {
            self.rebuild();
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    /// Cancelling an already-fired event is a no-op that returns `false`.
    /// The entry becomes a tombstone that is compacted away — by bucket
    /// drain, ready-run skip, or a wholesale sweep once tombstones
    /// outnumber live events — instead of living until its timestamp.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot() as usize;
        match self.slots.get_mut(slot) {
            Some(s) if s.generation == id.generation() && s.state == SlotState::Live => {
                s.state = SlotState::Cancelled;
                if s.barrier {
                    self.dead_barriers.insert(s.seq);
                }
                self.live -= 1;
                self.tombstones += 1;
                if self.tombstones > self.live + COMPACT_SLACK {
                    self.compact();
                }
                true
            }
            _ => false,
        }
    }

    /// Purges every tombstone from every structure, reaping their slots.
    /// Runs only when tombstones outnumber live events, so its cost
    /// amortizes to O(1) per cancellation.
    fn compact(&mut self) {
        let mut reaped: Vec<u32> = Vec::with_capacity(self.tombstones);
        let slots = &self.slots;
        let keep = |e: &Entry<E>, reaped: &mut Vec<u32>| {
            if slots[e.slot as usize].state == SlotState::Cancelled {
                reaped.push(e.slot);
                false
            } else {
                true
            }
        };
        self.ready.retain(|e| keep(e, &mut reaped));
        for bucket in &mut self.buckets {
            bucket.retain(|e| keep(e, &mut reaped));
        }
        self.tombstones -= reaped.len();
        for slot in reaped {
            self.reap_slot(slot);
        }
        debug_assert_eq!(self.tombstones, 0, "compaction must purge every tombstone");
    }

    /// Drops tombstones from the back of the ready run so its last entry,
    /// if any, is live.
    fn skim_ready(&mut self) {
        while let Some(e) = self.ready.last() {
            if self.slot_cancelled(e.slot) {
                let slot = e.slot;
                self.ready.pop();
                self.tombstones -= 1;
                self.reap_slot(slot);
            } else {
                return;
            }
        }
    }

    /// Refills the ready run by walking the calendar (re-sizing it and
    /// jumping to the earliest event's day if a whole year passes without
    /// an eligible event). Returns `false` iff no live event remains.
    /// On return `true`, the back of `ready` is a live entry.
    fn refill_ready(&mut self) -> bool {
        loop {
            self.skim_ready();
            if !self.ready.is_empty() {
                return true;
            }
            if self.live == 0 {
                return false;
            }
            let mask = self.buckets.len() - 1;
            let mut days = 0;
            let year = self.buckets.len();
            while days < year {
                let idx = ((self.day_start >> self.shift) as usize) & mask;
                let day_end = self.day_start.saturating_add(self.width());
                if !self.buckets[idx].is_empty() {
                    // Open the day: extract entries inside it (residents of
                    // later years with the same day index stay behind) and
                    // purge tombstones while the bucket is hot.
                    let mut batch = std::mem::take(&mut self.buckets[idx]);
                    let mut kept = Vec::new();
                    for entry in batch.drain(..) {
                        if self.slots[entry.slot as usize].state == SlotState::Cancelled {
                            self.tombstones -= 1;
                            self.reap_slot(entry.slot);
                        } else if entry.time.as_nanos() < day_end {
                            self.ready.push(entry);
                        } else {
                            kept.push(entry);
                        }
                    }
                    self.buckets[idx] = kept;
                }
                self.day_start = day_end;
                days += 1;
                if !self.ready.is_empty() {
                    // One sort per day, then the whole batch drains at
                    // Vec::pop cost — same-timestamp bursts pop
                    // back-to-back without touching the calendar again.
                    self.ready
                        .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    return true;
                }
            }
            // A whole year without an eligible event: re-size the calendar
            // around the survivors and jump to the earliest day.
            self.rebuild();
        }
    }

    /// Re-sizes the calendar around the pending population: bucket count
    /// tracks the number of events, day width their span, and the cursor
    /// jumps to the earliest event's day. Also purges every tombstone.
    fn rebuild(&mut self) {
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.live);
        let mut reaped: Vec<u32> = Vec::new();
        for bucket in &mut self.buckets {
            for entry in bucket.drain(..) {
                if self.slots[entry.slot as usize].state == SlotState::Cancelled {
                    reaped.push(entry.slot);
                } else {
                    all.push(entry);
                }
            }
        }
        self.tombstones -= reaped.len();
        for slot in reaped {
            self.reap_slot(slot);
        }
        debug_assert_eq!(all.len(), self.live, "ready is empty during rebuild");
        if all.is_empty() {
            return;
        }
        let mut min_t = u64::MAX;
        let mut max_t = 0u64;
        for e in &all {
            let t = e.time.as_nanos();
            min_t = min_t.min(t);
            max_t = max_t.max(t);
        }
        let target = all
            .len()
            .clamp(INITIAL_BUCKETS, MAX_BUCKETS)
            .next_power_of_two();
        // Smallest day width such that the whole span fits inside one year,
        // so the very next walk is guaranteed to open a non-empty day.
        let span = max_t - min_t;
        let mut shift = 0u32;
        while shift < 63 && (span >> shift) >= target as u64 {
            shift += 1;
        }
        self.shift = shift;
        self.day_start = min_t & !(self.width() - 1);
        if self.buckets.len() != target {
            self.buckets = (0..target).map(|_| Vec::new()).collect();
        }
        let mask = target - 1;
        for entry in all {
            let idx = ((entry.time.as_nanos() >> self.shift) as usize) & mask;
            self.buckets[idx].push(entry);
        }
    }

    /// Pops the earliest pending event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted. Cancelled events are
    /// silently discarded.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.refill_ready() {
            return None;
        }
        let entry = self.ready.pop().expect("refill_ready guarantees an entry");
        self.reap_slot(entry.slot);
        self.live -= 1;
        if entry.barrier {
            // Pops follow the global (time, seq) order, so a popping
            // barrier is the minimum pending barrier: it sits at the heap
            // top once cancelled predecessors are skimmed away.
            self.skim_dead_barriers();
            let top = self.barriers.pop();
            debug_assert_eq!(top, Some(Reverse((entry.time, entry.seq))));
        }
        debug_assert!(entry.time >= self.now, "event queue went back in time");
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// The timestamp of the next pending (non-cancelled) event, if any.
    ///
    /// This peeks past cancelled entries without firing anything.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.refill_ready() {
            return None;
        }
        self.ready.last().map(|e| e.time)
    }

    /// Whether the next pending event (the one [`Self::pop`] would return)
    /// is a barrier.
    pub fn peek_is_barrier(&mut self) -> bool {
        if !self.refill_ready() {
            return false;
        }
        self.ready.last().is_some_and(|e| e.barrier)
    }

    /// The timestamp of the earliest pending (non-cancelled) barrier
    /// event, if any. O(1) amortized: reads the barrier heap top after
    /// lazily discarding cancelled entries.
    pub fn peek_barrier_time(&mut self) -> Option<SimTime> {
        self.skim_dead_barriers();
        self.barriers.peek().map(|&Reverse((t, _))| t)
    }

    /// Discards cancelled barriers sitting at the barrier-heap top.
    fn skim_dead_barriers(&mut self) {
        while let Some(&Reverse((_, seq))) = self.barriers.peek() {
            if self.dead_barriers.remove(&seq) {
                self.barriers.pop();
            } else {
                return;
            }
        }
    }

    /// Number of pending events; cancelled entries are not counted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physically stored entries (live + not-yet-compacted tombstones).
    /// Exposed so tests can assert tombstone compaction actually bounds
    /// memory; not part of the scheduling contract.
    #[doc(hidden)]
    #[must_use]
    pub fn physical_len(&self) -> usize {
        self.live + self.tombstones
    }
}

#[cfg(test)]
mod tests {
    use super::reference::HeapEventQueue;
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3u32);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn time_sequence_order_holds_when_scheduling_interleaves_with_popping() {
        // The (time, sequence) contract is not just about batch inserts:
        // an event scheduled *between* pops at an already-populated
        // timestamp still sorts after everything previously scheduled
        // there — its sequence number is larger — and before anything
        // scheduled later. This is the exact property the engine's
        // same-timestamp handler chains (offload completes → reload
        // scheduled at the same instant) rely on.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(10);
        q.schedule(t, "first");
        q.schedule(t, "second");
        assert_eq!(q.pop().map(|(_, e)| e), Some("first"));
        // Scheduled mid-drain at the same (current) timestamp: runs after
        // "second", because its sequence number is higher.
        q.schedule(t, "third");
        q.schedule(SimTime::from_nanos(11), "later-time");
        assert_eq!(q.pop().map(|(_, e)| e), Some("second"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("third"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("later-time"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_handle_does_not_alias_slot_reuse() {
        // After an event fires, its slot is recycled for later schedules;
        // the stale handle's generation no longer matches, so cancelling it
        // must not touch the slot's new occupant.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.pop();
        let _b = q.schedule(SimTime::from_nanos(2), "b");
        assert!(!q.cancel(a), "stale handle must not cancel the new event");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn tombstones_are_compacted_not_accumulated() {
        // Cancel far more events than stay live; physical storage must
        // track the live population instead of the cancellation history.
        let mut q = EventQueue::new();
        let mut live = 0usize;
        for i in 0..10_000u64 {
            let id = q.schedule(SimTime::from_nanos(1_000_000 + i), i);
            if i % 100 == 0 {
                live += 1;
            } else {
                q.cancel(id);
            }
        }
        assert_eq!(q.len(), live);
        // The wholesale sweep fires as soon as tombstones exceed
        // live + COMPACT_SLACK, so that is the invariant bound: storage
        // tracks the ~100 live events, not the ~9900 cancellations.
        assert!(
            q.physical_len() <= 2 * live + COMPACT_SLACK,
            "physical {} must stay near live {}",
            q.physical_len(),
            live
        );
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, live);
    }

    #[test]
    fn barrier_peek_tracks_schedules_pops_and_cancels() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_barrier_time(), None);
        q.schedule(SimTime::from_nanos(1), "safe");
        let b5 = q.schedule_barrier(SimTime::from_nanos(5), "barrier-5");
        q.schedule_barrier(SimTime::from_nanos(9), "barrier-9");
        assert_eq!(q.peek_barrier_time(), Some(SimTime::from_nanos(5)));
        assert!(!q.peek_is_barrier(), "next event is the safe one");
        // Cancelling the earlier barrier exposes the later one.
        assert!(q.cancel(b5));
        assert_eq!(q.peek_barrier_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("safe"));
        assert!(q.peek_is_barrier());
        assert_eq!(q.pop().map(|(_, e)| e), Some("barrier-9"));
        assert_eq!(q.peek_barrier_time(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    fn spread_far_beyond_initial_calendar_pops_in_order() {
        // Times spanning tens of seconds force calendar re-sizing (the
        // initial year covers ~16 ms); order must still hold exactly.
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..500u64)
            .map(|i| (i * 7_919_998_483) % 30_000_000_000)
            .collect();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(*t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, t)| (*t, i)).collect();
        expected.sort();
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, i)| (t.as_nanos(), i))).collect();
        assert_eq!(got, expected);
    }

    proptest! {
        /// Whatever the insertion order, pops are sorted by time and FIFO
        /// within equal timestamps.
        #[test]
        fn prop_pop_order_is_stable_sort(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, t)| (*t, i)).collect();
            expected.sort(); // stable by (time, insertion index)
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, i)| (t.as_nanos(), i))).collect();
            prop_assert_eq!(got, expected);
        }

        /// Cancelled events never fire.
        #[test]
        fn prop_cancelled_never_fire(
            times in proptest::collection::vec(0u64..50, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, t)| q.schedule(SimTime::from_nanos(*t), i))
                .collect();
            let mut cancelled = std::collections::HashSet::new();
            for (i, id) in ids.iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    q.cancel(*id);
                    cancelled.insert(i);
                }
            }
            while let Some((_, i)) = q.pop() {
                prop_assert!(!cancelled.contains(&i));
            }
        }

        /// The calendar queue and the reference binary-heap implementation
        /// produce identical observable behaviour — pop results, cancel
        /// return values, peek times, clocks and lengths — on arbitrary
        /// interleavings of schedule/cancel/pop/peek. The reference is the
        /// executable spec of the (time, sequence) contract; this is the
        /// equivalence proof for the calendar queue.
        ///
        /// Each op is an `(opcode, operand)` pair: opcodes below 50
        /// schedule at `now + operand` (operands span sub-day to
        /// beyond-year deltas so ready-run inserts, calendar inserts and
        /// re-sizing jumps all get hit), 50..=69 cancel the
        /// `operand % issued`-th handle, 70..=94 pop, the rest peek.
        #[test]
        fn prop_calendar_queue_matches_reference_heap(
            ops in proptest::collection::vec((0u32..100, 0u64..200_000_000), 1..400)
        ) {
            let mut cal = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            let mut ids = Vec::new();
            for (n, (opcode, operand)) in ops.into_iter().enumerate() {
                match opcode {
                    0..=49 => {
                        let t = cal.now() + crate::time::SimDuration::from_nanos(operand);
                        // Roughly a third of schedules are barriers, so the
                        // barrier heap sees interleaved pops, cancels and
                        // lazy skims too.
                        let barrier = operand % 3 == 0;
                        let a = cal.schedule_flagged(t, n, barrier);
                        let b = heap.schedule_flagged(t, n, barrier);
                        ids.push((a, b));
                    }
                    50..=69 => {
                        if !ids.is_empty() {
                            let (a, b) = ids[(operand % ids.len() as u64) as usize];
                            prop_assert_eq!(cal.cancel(a), heap.cancel(b));
                        }
                    }
                    70..=94 => {
                        prop_assert_eq!(cal.pop(), heap.pop());
                        prop_assert_eq!(cal.now(), heap.now());
                    }
                    _ => {
                        prop_assert_eq!(cal.peek_time(), heap.peek_time());
                        prop_assert_eq!(cal.peek_is_barrier(), heap.peek_is_barrier());
                    }
                }
                prop_assert_eq!(cal.peek_barrier_time(), heap.peek_barrier_time());
                prop_assert_eq!(cal.len(), heap.len());
            }
            // Drain both to the end: full pop orders must coincide.
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(&a, &b);
                if b.is_none() {
                    break;
                }
            }
        }
    }
}
