//! A deterministic future-event list.
//!
//! [`EventQueue`] is a priority queue of `(time, payload)` pairs. Scheduled
//! events can be cancelled by the [`EventId`] returned at insertion time.
//!
//! # Ordering contract
//!
//! Every schedule is stamped with a monotonically increasing **sequence
//! number**, and pops follow the strict total order **`(time, sequence)`
//! ascending** — never the heap's internal layout. Consequences callers may
//! rely on:
//!
//! * events that share a timestamp pop in insertion order (FIFO), even
//!   when scheduling interleaves with popping;
//! * the order is a *total* order: two distinct events never compare equal,
//!   so a simulation's event trace is a pure function of its schedule
//!   calls.
//!
//! This contract is what the sharded engine's interleaving discipline rests
//! on: each shard's queue replays identically in isolation, and the
//! cluster's cross-shard tie-break (arrivals first, then lowest shard id)
//! composes with `(time, sequence)` into a total order over the whole
//! cluster — which is why a one-shard cluster is byte-identical to the
//! pre-sharding engine and an N-shard run is reproducible at any thread
//! count.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifier of a scheduled event, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

/// Heap entry: ordered by `(time, seq)` ascending.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The future-event list of a discrete-event simulation.
///
/// # Examples
///
/// ```
/// use pascal_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), e), (10, "early"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<(EventId, E)>>,
    /// Ids scheduled but neither fired nor cancelled yet.
    live: HashSet<EventId>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `time` and returns a cancellation handle.
    ///
    /// Scheduling in the past is a logic error.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Self::now`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule an event at {time:?} before current time {:?}",
            self.now
        );
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            payload: (id, payload),
        });
        self.live.insert(id);
        self.next_seq += 1;
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    /// Cancelling an already-fired event is a no-op that returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Pops the earliest pending event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted. Cancelled events are
    /// silently discarded.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let (id, payload) = entry.payload;
            if self.cancelled.remove(&id) {
                continue;
            }
            self.live.remove(&id);
            debug_assert!(entry.time >= self.now, "event queue went back in time");
            self.now = entry.time;
            return Some((entry.time, payload));
        }
        None
    }

    /// The timestamp of the next pending (non-cancelled) event, if any.
    ///
    /// This peeks past cancelled entries without firing anything.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            let (id, _) = entry.payload;
            if self.cancelled.contains(&id) {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.payload.0);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of pending events, counting not-yet-reaped cancelled entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3u32);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn time_sequence_order_holds_when_scheduling_interleaves_with_popping() {
        // The (time, sequence) contract is not just about batch inserts:
        // an event scheduled *between* pops at an already-populated
        // timestamp still sorts after everything previously scheduled
        // there — its sequence number is larger — and before anything
        // scheduled later. This is the exact property the engine's
        // same-timestamp handler chains (offload completes → reload
        // scheduled at the same instant) rely on.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(10);
        q.schedule(t, "first");
        q.schedule(t, "second");
        assert_eq!(q.pop().map(|(_, e)| e), Some("first"));
        // Scheduled mid-drain at the same (current) timestamp: runs after
        // "second", because its sequence number is higher.
        q.schedule(t, "third");
        q.schedule(SimTime::from_nanos(11), "later-time");
        assert_eq!(q.pop().map(|(_, e)| e), Some("second"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("third"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("later-time"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    proptest! {
        /// Whatever the insertion order, pops are sorted by time and FIFO
        /// within equal timestamps.
        #[test]
        fn prop_pop_order_is_stable_sort(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, t)| (*t, i)).collect();
            expected.sort(); // stable by (time, insertion index)
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, i)| (t.as_nanos(), i))).collect();
            prop_assert_eq!(got, expected);
        }

        /// Cancelled events never fire.
        #[test]
        fn prop_cancelled_never_fire(
            times in proptest::collection::vec(0u64..50, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, t)| q.schedule(SimTime::from_nanos(*t), i))
                .collect();
            let mut cancelled = std::collections::HashSet::new();
            for (i, id) in ids.iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    q.cancel(*id);
                    cancelled.insert(i);
                }
            }
            while let Some((_, i)) = q.pop() {
                prop_assert!(!cancelled.contains(&i));
            }
        }
    }
}
