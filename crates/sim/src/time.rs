//! Virtual time for the discrete-event simulator.
//!
//! Time is kept as an integer number of nanoseconds so that event ordering is
//! exact and runs are bit-reproducible across platforms. [`SimTime`] is a
//! point on the simulation clock; [`SimDuration`] is a span between two
//! points. Both convert to and from `f64` seconds for reporting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second, used by all second-based conversions.
const NANOS_PER_SEC: f64 = 1e9;

/// A point on the simulation clock, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use pascal_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use pascal_sim::SimDuration;
///
/// let d = SimDuration::from_millis(30) * 4;
/// assert_eq!(d.as_secs_f64(), 0.12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time point from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time point from seconds, saturating on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimTime((secs * NANOS_PER_SEC).round().min(u64::MAX as f64) as u64)
    }

    /// Raw nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// The span from `earlier` to `self`, clamped at zero if `earlier` is later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    #[must_use]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, saturating on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimDuration((secs * NANOS_PER_SEC).round().min(u64::MAX as f64) as u64)
    }

    /// Raw nanoseconds in this span.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// This span expressed in milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction of spans.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative factor, saturating on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "SimDuration::mul_f64 requires a finite non-negative factor, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round().min(u64::MAX as f64) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; saturates to zero
    /// in release builds.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_through_seconds() {
        let t = SimTime::from_secs_f64(12.345678);
        assert!((t.as_secs_f64() - 12.345678).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic_is_exact_in_nanos() {
        let a = SimDuration::from_millis(30);
        let b = SimDuration::from_micros(500);
        assert_eq!((a + b).as_nanos(), 30_500_000);
        assert_eq!((a - b).as_nanos(), 29_500_000);
        assert_eq!((a * 3).as_nanos(), 90_000_000);
        assert_eq!((a / 2).as_nanos(), 15_000_000);
    }

    #[test]
    fn time_plus_duration_orders_correctly() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_nanos(1);
        assert!(t1 > t0);
        assert_eq!(t1 - t0, SimDuration::from_nanos(1));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(4));
    }

    #[test]
    fn checked_since_detects_negative_spans() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_nanos(4)));
    }

    #[test]
    fn mul_f64_rounds_to_nearest_nano() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(0.25).as_nanos(), 3); // 2.5 rounds away from zero
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{:?}", SimDuration::ZERO).is_empty());
    }
}
