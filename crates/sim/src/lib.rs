//! # pascal-sim — discrete-event simulation substrate
//!
//! The foundation of the PASCAL reproduction: an exact-integer virtual clock
//! ([`SimTime`], [`SimDuration`]), a deterministic future-event list
//! ([`EventQueue`]) with FIFO tie-breaking and cancellation, and a seeded
//! random source ([`SimRng`]) with the samplers the paper's workloads need
//! (uniform, normal, log-normal, exponential).
//!
//! Everything above this crate — the GPU performance model, the serving
//! instances, the schedulers and the experiment harness — is deterministic
//! given a trace and a seed, because all nondeterminism is funnelled through
//! these types.
//!
//! # Examples
//!
//! A minimal simulation loop:
//!
//! ```
//! use pascal_sim::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev {
//!     Tick(u32),
//! }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), Ev::Tick(0));
//! let mut fired = Vec::new();
//! while let Some((t, ev)) = q.pop() {
//!     match ev {
//!         Ev::Tick(n) if n < 3 => {
//!             fired.push(n);
//!             q.schedule(t + SimDuration::from_millis(5), Ev::Tick(n + 1));
//!         }
//!         Ev::Tick(n) => fired.push(n),
//!     }
//! }
//! assert_eq!(fired, vec![0, 1, 2, 3]);
//! assert_eq!(q.now(), SimTime::from_nanos(20_000_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod rng;
mod time;

pub use event::reference::{HeapEventId, HeapEventQueue};
pub use event::{EventId, EventQueue};
pub use rng::{log_normal_mu_for_mean, SimRng};
pub use time::{SimDuration, SimTime};
