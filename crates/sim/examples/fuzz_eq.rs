use pascal_sim::{EventQueue, HeapEventQueue, SimDuration};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

fn run_ops(ops: &[(u32, u64)]) -> Result<(), String> {
    let mut cal = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    let mut ids = Vec::new();
    for (n, &(opcode, operand)) in ops.iter().enumerate() {
        match opcode % 100 {
            0..=49 => {
                let t = cal.now() + SimDuration::from_nanos(operand);
                let a = cal.schedule(t, n);
                let b = heap.schedule(t, n);
                ids.push((a, b));
            }
            50..=69 => {
                if !ids.is_empty() {
                    let (a, b) = ids[(operand % ids.len() as u64) as usize];
                    if cal.cancel(a) != heap.cancel(b) {
                        return Err(format!("cancel mismatch at op {n}"));
                    }
                }
            }
            70..=94 => {
                let (x, y) = (cal.pop(), heap.pop());
                if x != y {
                    return Err(format!("pop mismatch at op {n}: cal={x:?} heap={y:?}"));
                }
            }
            _ => {
                if cal.peek_time() != heap.peek_time() {
                    return Err(format!("peek mismatch at op {n}"));
                }
            }
        }
        if cal.len() != heap.len() {
            return Err(format!(
                "len mismatch at op {n}: {} vs {}",
                cal.len(),
                heap.len()
            ));
        }
    }
    loop {
        let (x, y) = (cal.pop(), heap.pop());
        if x != y {
            return Err(format!("drain mismatch: cal={x:?} heap={y:?}"));
        }
        if y.is_none() {
            break;
        }
    }
    Ok(())
}

fn main() {
    for seed in 0..2000u64 {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let nops = 1 + (lcg(&mut s) % 400) as usize;
        let ops: Vec<(u32, u64)> = (0..nops)
            .map(|_| ((lcg(&mut s) % 100) as u32, lcg(&mut s) % 200_000_000))
            .collect();
        if let Err(e) = run_ops(&ops) {
            // shrink: remove ops one at a time while still failing
            let mut cur = ops.clone();
            loop {
                let mut shrunk = false;
                let mut i = 0;
                while i < cur.len() {
                    let mut cand = cur.clone();
                    cand.remove(i);
                    if run_ops(&cand).is_err() {
                        cur = cand;
                        shrunk = true;
                    } else {
                        i += 1;
                    }
                }
                if !shrunk {
                    break;
                }
            }
            println!("seed {seed}: {e}");
            println!("minimal {} ops: {:?}", cur.len(), cur);
            println!("minimal error: {:?}", run_ops(&cur));
            return;
        }
    }
    println!("no failure in 2000 seeds");
}
