//! Paged KV-cache geometry.
//!
//! vLLM's PagedAttention allocates KV cache in fixed-size token blocks;
//! admission and growth decisions in the simulator are made in block units.
//! [`KvGeometry`] converts between tokens, blocks and bytes.

/// Block geometry of a paged KV cache.
///
/// # Examples
///
/// ```
/// use pascal_model::KvGeometry;
///
/// let geo = KvGeometry::new(16, 262_144);
/// assert_eq!(geo.blocks_for_tokens(1), 1);   // rounds up
/// assert_eq!(geo.blocks_for_tokens(16), 1);
/// assert_eq!(geo.blocks_for_tokens(17), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KvGeometry {
    /// Tokens per block (vLLM default: 16).
    pub block_tokens: u32,
    /// KV bytes per token (from [`crate::LlmSpec::kv_bytes_per_token`]).
    pub bytes_per_token: u64,
}

impl KvGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(block_tokens: u32, bytes_per_token: u64) -> Self {
        assert!(block_tokens > 0, "block_tokens must be non-zero");
        assert!(bytes_per_token > 0, "bytes_per_token must be non-zero");
        KvGeometry {
            block_tokens,
            bytes_per_token,
        }
    }

    /// Bytes occupied by one block.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        u64::from(self.block_tokens) * self.bytes_per_token
    }

    /// Blocks needed to hold `tokens` tokens (rounded up).
    #[must_use]
    pub fn blocks_for_tokens(&self, tokens: u64) -> u64 {
        tokens.div_ceil(u64::from(self.block_tokens))
    }

    /// Bytes needed to hold `tokens` tokens after block rounding.
    #[must_use]
    pub fn bytes_for_tokens(&self, tokens: u64) -> u64 {
        self.blocks_for_tokens(tokens) * self.block_bytes()
    }

    /// How many whole blocks fit in `capacity_bytes`.
    #[must_use]
    pub fn blocks_in(&self, capacity_bytes: u64) -> u64 {
        capacity_bytes / self.block_bytes()
    }

    /// How many tokens fit in `capacity_bytes` after block quantization.
    #[must_use]
    pub fn tokens_in(&self, capacity_bytes: u64) -> u64 {
        self.blocks_in(capacity_bytes) * u64::from(self.block_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geo() -> KvGeometry {
        KvGeometry::new(16, 262_144)
    }

    #[test]
    fn zero_tokens_need_zero_blocks() {
        assert_eq!(geo().blocks_for_tokens(0), 0);
        assert_eq!(geo().bytes_for_tokens(0), 0);
    }

    #[test]
    fn block_bytes_is_product() {
        assert_eq!(geo().block_bytes(), 16 * 262_144);
    }

    #[test]
    fn capacity_quantizes_down() {
        let g = geo();
        let cap = g.block_bytes() * 10 + 1; // one byte over 10 blocks
        assert_eq!(g.blocks_in(cap), 10);
        assert_eq!(g.tokens_in(cap), 160);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_block_rejected() {
        let _ = KvGeometry::new(0, 1);
    }

    proptest! {
        /// Round-trip: bytes_for_tokens always covers the tokens, and never
        /// overshoots by more than one block.
        #[test]
        fn prop_rounding_tight(tokens in 0u64..10_000_000) {
            let g = geo();
            let bytes = g.bytes_for_tokens(tokens);
            prop_assert!(bytes >= tokens * g.bytes_per_token);
            prop_assert!(bytes < tokens * g.bytes_per_token + g.block_bytes());
        }

        /// blocks_for_tokens is monotone.
        #[test]
        fn prop_blocks_monotone(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let g = geo();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(g.blocks_for_tokens(lo) <= g.blocks_for_tokens(hi));
        }
    }
}
