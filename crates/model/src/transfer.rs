//! Point-to-point transfer links: PCIe host links and the inter-node fabric.
//!
//! §V-A models eight server nodes "connected via a 100 Gbps fabric"; §V-C
//! studies the contention that arises when several instances migrate KV
//! caches to the same target. [`LinkSpec`] gives the per-transfer service
//! time; queueing/serialization on top of it lives in `pascal-cluster`.

use pascal_sim::SimDuration;

/// Bandwidth and base latency of a point-to-point link.
///
/// # Examples
///
/// ```
/// use pascal_model::LinkSpec;
///
/// let fabric = LinkSpec::fabric_100gbps();
/// // 2048 tokens x 256 KiB = 512 MiB over ~12.5 GB/s is ~40-45 ms, the
/// // figure the paper quotes from Splitwise for a 2048-token migration.
/// let t = fabric.transfer_time(512 * 1024 * 1024);
/// assert!((30.0..60.0).contains(&t.as_millis_f64()));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkSpec {
    /// Achievable bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Fixed per-transfer setup latency in seconds.
    pub base_latency_s: f64,
}

impl LinkSpec {
    /// Creates a link from raw bandwidth (bytes/s) and setup latency (s).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not strictly positive or `base_latency_s` is
    /// negative.
    #[must_use]
    pub fn new(bandwidth: f64, base_latency_s: f64) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "link bandwidth must be positive, got {bandwidth}"
        );
        assert!(
            base_latency_s.is_finite() && base_latency_s >= 0.0,
            "link latency must be non-negative, got {base_latency_s}"
        );
        LinkSpec {
            bandwidth,
            base_latency_s,
        }
    }

    /// The 100 Gbps inter-node fabric of the paper's cluster (§V-A), at
    /// ~95% efficiency with a 100 µs setup cost.
    #[must_use]
    pub fn fabric_100gbps() -> Self {
        LinkSpec::new(100.0e9 / 8.0 * 0.95, 100.0e-6)
    }

    /// An effective PCIe 5.0 x16 host link (~50 GB/s, 10 µs setup).
    #[must_use]
    pub fn pcie5_x16() -> Self {
        LinkSpec::new(50.0e9, 10.0e-6)
    }

    /// The inter-shard interconnect: traffic between scheduling domains
    /// crosses the spine, so it sees a quarter of the intra-shard fabric
    /// bandwidth and a higher setup cost. This asymmetry is what makes the
    /// migration cost/benefit test price cross-shard moves above
    /// intra-shard ones.
    #[must_use]
    pub fn interconnect_25gbps() -> Self {
        LinkSpec::new(25.0e9 / 8.0 * 0.95, 500.0e-6)
    }

    /// Time to push `bytes` through the link, ignoring queueing.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.base_latency_s + bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fabric_matches_papers_40ms_reference() {
        // §IV-B: "a one-time transfer delay of approximately 40 ms for
        // 2,048 tokens" (at 256 KiB/token).
        let bytes = 2048 * 256 * 1024;
        let ms = LinkSpec::fabric_100gbps()
            .transfer_time(bytes)
            .as_millis_f64();
        assert!(
            (35.0..55.0).contains(&ms),
            "fabric transfer {ms} ms out of band"
        );
    }

    #[test]
    fn pcie_is_faster_than_fabric() {
        let bytes = 100_000_000;
        assert!(
            LinkSpec::pcie5_x16().transfer_time(bytes)
                < LinkSpec::fabric_100gbps().transfer_time(bytes)
        );
    }

    #[test]
    fn interconnect_is_slower_than_fabric() {
        // The inter-shard tier must be strictly more expensive at every
        // size, or the two-tier topology stops pricing cross-shard moves
        // higher than intra-shard ones.
        for bytes in [0u64, 1 << 10, 1 << 30] {
            assert!(
                LinkSpec::interconnect_25gbps().transfer_time(bytes)
                    > LinkSpec::fabric_100gbps().transfer_time(bytes)
            );
        }
    }

    #[test]
    fn zero_bytes_costs_only_setup() {
        let link = LinkSpec::new(1e9, 0.5);
        assert_eq!(link.transfer_time(0).as_secs_f64(), 0.5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkSpec::new(0.0, 0.0);
    }

    proptest! {
        #[test]
        fn prop_transfer_monotone_in_bytes(a in 0u64..1 << 40, b in 0u64..1 << 40) {
            let link = LinkSpec::fabric_100gbps();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi));
        }
    }
}
