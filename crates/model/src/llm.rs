//! Cost-relevant architecture description of a served LLM.
//!
//! The scheduler never needs real weights: every decision in the paper is a
//! function of per-token KV-cache bytes, total weight bytes, and FLOP counts.
//! [`LlmSpec`] captures exactly those quantities, derived from the public
//! architecture of each model.

/// Architecture parameters of a transformer LLM, reduced to what the serving
/// simulator needs: memory footprints and FLOP counts.
///
/// # Examples
///
/// ```
/// use pascal_model::LlmSpec;
///
/// let llm = LlmSpec::deepseek_r1_distill_qwen_32b();
/// // GQA: 2 (K and V) x 64 layers x 8 KV heads x 128 head dim x 2 bytes.
/// assert_eq!(llm.kv_bytes_per_token(), 262_144);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LlmSpec {
    /// Human-readable model name.
    pub name: String,
    /// Total parameter count.
    pub params: u64,
    /// Number of transformer layers.
    pub num_layers: u32,
    /// Model (embedding) dimension.
    pub hidden_dim: u32,
    /// Number of query heads.
    pub num_query_heads: u32,
    /// Number of key/value heads (< query heads under GQA).
    pub num_kv_heads: u32,
    /// Dimension of each attention head.
    pub head_dim: u32,
    /// Bytes per weight element (2 for FP16/BF16).
    pub weight_bytes_per_param: u32,
    /// Bytes per KV-cache element (2 for FP16 KV).
    pub kv_bytes_per_elem: u32,
}

impl LlmSpec {
    /// DeepSeek-R1-Distill-Qwen-32B, the model evaluated throughout the
    /// paper (§III-A, §V-A). Qwen2.5-32B architecture: 64 layers, hidden
    /// 5120, 40 query heads, 8 KV heads (GQA), head dim 128, BF16.
    #[must_use]
    pub fn deepseek_r1_distill_qwen_32b() -> Self {
        LlmSpec {
            name: "DeepSeek-R1-Distill-Qwen-32B".to_owned(),
            params: 32_760_000_000,
            num_layers: 64,
            hidden_dim: 5_120,
            num_query_heads: 40,
            num_kv_heads: 8,
            head_dim: 128,
            weight_bytes_per_param: 2,
            kv_bytes_per_elem: 2,
        }
    }

    /// DeepSeek-R1-Distill-Qwen-14B: a smaller reasoning model, useful for
    /// sensitivity studies (48 layers, hidden 5120, 8 KV heads).
    #[must_use]
    pub fn deepseek_r1_distill_qwen_14b() -> Self {
        LlmSpec {
            name: "DeepSeek-R1-Distill-Qwen-14B".to_owned(),
            params: 14_770_000_000,
            num_layers: 48,
            hidden_dim: 5_120,
            num_query_heads: 40,
            num_kv_heads: 8,
            head_dim: 128,
            weight_bytes_per_param: 2,
            kv_bytes_per_elem: 2,
        }
    }

    /// DeepSeek-R1-Distill-Qwen-7B (28 layers, hidden 3584, 4 KV heads).
    #[must_use]
    pub fn deepseek_r1_distill_qwen_7b() -> Self {
        LlmSpec {
            name: "DeepSeek-R1-Distill-Qwen-7B".to_owned(),
            params: 7_620_000_000,
            num_layers: 28,
            hidden_dim: 3_584,
            num_query_heads: 28,
            num_kv_heads: 4,
            head_dim: 128,
            weight_bytes_per_param: 2,
            kv_bytes_per_elem: 2,
        }
    }

    /// KV-cache bytes appended per generated (or prefilled) token:
    /// `2 * layers * kv_heads * head_dim * bytes_per_elem`.
    #[must_use]
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * u64::from(self.num_layers)
            * u64::from(self.num_kv_heads)
            * u64::from(self.head_dim)
            * u64::from(self.kv_bytes_per_elem)
    }

    /// Total bytes of model weights resident on each serving instance.
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        self.params * u64::from(self.weight_bytes_per_param)
    }

    /// Dense FLOPs to process one token through the model (the classic
    /// `2 * params` estimate for matmul-dominated transformers).
    #[must_use]
    pub fn flops_per_token(&self) -> f64 {
        2.0 * self.params as f64
    }

    /// Additional attention FLOPs for one token attending over `context`
    /// previous tokens: `4 * hidden * layers * context` (QKᵀ plus AV).
    #[must_use]
    pub fn attention_flops_per_token(&self, context: u64) -> f64 {
        4.0 * f64::from(self.hidden_dim) * f64::from(self.num_layers) * context as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qwen32b_kv_footprint_is_256_kib() {
        let llm = LlmSpec::deepseek_r1_distill_qwen_32b();
        assert_eq!(llm.kv_bytes_per_token(), 256 * 1024);
    }

    #[test]
    fn qwen32b_weights_are_about_65_gb() {
        let llm = LlmSpec::deepseek_r1_distill_qwen_32b();
        let gb = llm.weight_bytes() as f64 / 1e9;
        assert!((64.0..68.0).contains(&gb), "weights {gb} GB out of range");
    }

    #[test]
    fn smaller_models_cost_less() {
        let big = LlmSpec::deepseek_r1_distill_qwen_32b();
        let mid = LlmSpec::deepseek_r1_distill_qwen_14b();
        let small = LlmSpec::deepseek_r1_distill_qwen_7b();
        assert!(big.kv_bytes_per_token() > mid.kv_bytes_per_token());
        assert!(mid.kv_bytes_per_token() > small.kv_bytes_per_token());
        assert!(big.weight_bytes() > mid.weight_bytes());
        assert!(big.flops_per_token() > small.flops_per_token());
    }

    #[test]
    fn attention_flops_grow_with_context() {
        let llm = LlmSpec::deepseek_r1_distill_qwen_32b();
        assert!(llm.attention_flops_per_token(2048) > llm.attention_flops_per_token(128));
        assert_eq!(llm.attention_flops_per_token(0), 0.0);
    }
}
