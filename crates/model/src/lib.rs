//! # pascal-model — profile-based LLM serving performance model
//!
//! The hardware substrate of the PASCAL reproduction. The paper evaluates
//! its scheduler on a *profile-based* cluster simulator (§V-A): iteration
//! latencies come from profiled functions of batch composition rather than
//! from executing kernels. This crate provides those functions analytically,
//! calibrated to the paper's testbed (NVIDIA H100 96 GB serving
//! DeepSeek-R1-Distill-Qwen-32B over PCIe 5.0 and a 100 Gbps fabric):
//!
//! * [`LlmSpec`] — architecture-derived cost constants (KV bytes/token,
//!   weight bytes, FLOPs/token),
//! * [`GpuSpec`] — peak rates and efficiency factors,
//! * [`PerfModel`] — prefill / decode-step / PCIe-transfer latencies,
//! * [`KvGeometry`] — paged KV-cache block arithmetic,
//! * [`LinkSpec`] — host links and the inter-node migration fabric,
//! * [`validate`] — closed-form reference latencies the engine is tested
//!   against (our substitute for the paper's real-hardware MAPE check).
//!
//! # Examples
//!
//! ```
//! use pascal_model::{DecodeBatch, GpuSpec, KvGeometry, LlmSpec, PerfModel};
//!
//! let llm = LlmSpec::deepseek_r1_distill_qwen_32b();
//! let geo = KvGeometry::new(16, llm.kv_bytes_per_token());
//! let perf = PerfModel::new(llm, GpuSpec::h100_96gb());
//!
//! // How many requests of ~1k context fit in HBM next to the weights?
//! let concurrent = perf.kv_capacity_tokens() / 1024;
//! assert!(concurrent > 30);
//!
//! // And what does a full decode iteration over them cost?
//! let step = perf.decode_step_time(DecodeBatch {
//!     num_seqs: concurrent as u32,
//!     total_context_tokens: concurrent * 1024,
//! });
//! assert!(step.as_millis_f64() < 100.0);
//! # let _ = geo;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gpu;
mod llm;
mod memory;
mod perf;
mod transfer;
pub mod validate;

pub use gpu::GpuSpec;
pub use llm::LlmSpec;
pub use memory::KvGeometry;
pub use perf::{DecodeBatch, PerfModel};
pub use transfer::LinkSpec;
