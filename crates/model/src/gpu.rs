//! GPU and host-side hardware description.
//!
//! [`GpuSpec`] holds the peak numbers and efficiency factors of the roofline
//! performance model. The presets are calibrated so that, combined with
//! [`crate::LlmSpec::deepseek_r1_distill_qwen_32b`], the simulated decode
//! step lands in the ~25–35 ms range the paper treats as typical (§IV-B
//! cites 30 ms/token as an aggressive decode speed).

/// Peak capabilities and achievable-efficiency factors of one serving GPU.
///
/// # Examples
///
/// ```
/// use pascal_model::GpuSpec;
///
/// let gpu = GpuSpec::h100_96gb();
/// assert!(gpu.hbm_bytes > 90_000_000_000);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GpuSpec {
    /// Marketing name of the device.
    pub name: String,
    /// Total HBM capacity in bytes.
    pub hbm_bytes: u64,
    /// Peak HBM bandwidth in bytes/second.
    pub hbm_bandwidth: f64,
    /// Peak dense FP16/BF16 throughput in FLOP/second (no sparsity).
    pub dense_fp16_flops: f64,
    /// Fraction of peak FLOPs achieved by prefill kernels (model FLOPs
    /// utilization).
    pub prefill_mfu: f64,
    /// Fraction of peak HBM bandwidth achieved by decode kernels.
    pub decode_bandwidth_eff: f64,
    /// Host link (PCIe) effective bandwidth in bytes/second, used for KV
    /// offload to and reload from CPU memory.
    pub pcie_bandwidth: f64,
    /// Fixed per-iteration launch/scheduling overhead in seconds.
    pub iteration_overhead_s: f64,
    /// Additional per-sequence overhead per iteration in seconds (batching
    /// bookkeeping, sampler, paged-attention table walks).
    pub per_sequence_overhead_s: f64,
    /// HBM bytes reserved for activations, CUDA graphs and allocator slack —
    /// unavailable to weights or KV cache.
    pub activation_reserve_bytes: u64,
}

impl GpuSpec {
    /// NVIDIA H100 with 96 GB HBM3 over PCIe 5.0 — the testbed of §III-A and
    /// the per-instance GPU of the §V-A cluster simulator.
    ///
    /// Peak numbers: 989 TFLOP/s dense BF16, 3.35 TB/s HBM. Efficiency
    /// factors (45% prefill MFU, 75% decode bandwidth) follow the published
    /// ranges used by profile-based simulators.
    #[must_use]
    pub fn h100_96gb() -> Self {
        GpuSpec {
            name: "NVIDIA H100 96GB".to_owned(),
            hbm_bytes: 96_000_000_000,
            hbm_bandwidth: 3.35e12,
            dense_fp16_flops: 989.0e12,
            prefill_mfu: 0.45,
            decode_bandwidth_eff: 0.75,
            pcie_bandwidth: 50.0e9,
            iteration_overhead_s: 1.5e-3,
            per_sequence_overhead_s: 20.0e-6,
            activation_reserve_bytes: 4_000_000_000,
        }
    }

    /// NVIDIA A100 80 GB — a weaker preset for sensitivity studies.
    #[must_use]
    pub fn a100_80gb() -> Self {
        GpuSpec {
            name: "NVIDIA A100 80GB".to_owned(),
            hbm_bytes: 80_000_000_000,
            hbm_bandwidth: 2.0e12,
            dense_fp16_flops: 312.0e12,
            prefill_mfu: 0.45,
            decode_bandwidth_eff: 0.75,
            pcie_bandwidth: 25.0e9,
            iteration_overhead_s: 1.5e-3,
            per_sequence_overhead_s: 25.0e-6,
            activation_reserve_bytes: 4_000_000_000,
        }
    }

    /// Effective decode-path bandwidth in bytes/second.
    #[must_use]
    pub fn effective_bandwidth(&self) -> f64 {
        self.hbm_bandwidth * self.decode_bandwidth_eff
    }

    /// Effective prefill-path compute in FLOP/second.
    #[must_use]
    pub fn effective_flops(&self) -> f64 {
        self.dense_fp16_flops * self.prefill_mfu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_effective_rates_are_sane() {
        let gpu = GpuSpec::h100_96gb();
        assert!(gpu.effective_bandwidth() > 2.0e12);
        assert!(gpu.effective_flops() > 3.0e14);
    }

    #[test]
    fn a100_is_slower_than_h100() {
        let h = GpuSpec::h100_96gb();
        let a = GpuSpec::a100_80gb();
        assert!(a.effective_bandwidth() < h.effective_bandwidth());
        assert!(a.effective_flops() < h.effective_flops());
        assert!(a.hbm_bytes < h.hbm_bytes);
    }
}
