//! The profile-based latency model.
//!
//! Mirrors the methodology of §V-A: iteration latencies are closed-form
//! functions of batch composition, calibrated to H100-class hardware.
//!
//! * **Prefill** iterations are compute-bound: time grows linearly with the
//!   number of prompt tokens (plus a small quadratic attention term).
//! * **Decode** iterations are memory-bandwidth-bound: every step re-reads
//!   the full weights plus the KV cache of every sequence in the batch.

use pascal_sim::SimDuration;

use crate::gpu::GpuSpec;
use crate::llm::LlmSpec;

/// Composition of one decode iteration: how many sequences advance one token
/// and how much KV context they collectively attend over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeBatch {
    /// Number of sequences generating one token each.
    pub num_seqs: u32,
    /// Sum of the context lengths (tokens) of those sequences.
    pub total_context_tokens: u64,
}

/// Closed-form latency model for a single GPU instance serving `llm`.
///
/// # Examples
///
/// ```
/// use pascal_model::{DecodeBatch, GpuSpec, LlmSpec, PerfModel};
///
/// let perf = PerfModel::new(LlmSpec::deepseek_r1_distill_qwen_32b(), GpuSpec::h100_96gb());
/// let step = perf.decode_step_time(DecodeBatch { num_seqs: 8, total_context_tokens: 8 * 1024 });
/// // A 32B model on H100 decodes in the tens of milliseconds per step.
/// assert!(step.as_millis_f64() > 20.0 && step.as_millis_f64() < 50.0);
/// ```
#[derive(Clone, Debug)]
pub struct PerfModel {
    llm: LlmSpec,
    gpu: GpuSpec,
}

impl PerfModel {
    /// Builds a model for `llm` running on `gpu`.
    ///
    /// # Panics
    ///
    /// Panics if the GPU cannot even hold the model weights.
    #[must_use]
    pub fn new(llm: LlmSpec, gpu: GpuSpec) -> Self {
        assert!(
            llm.weight_bytes() + gpu.activation_reserve_bytes < gpu.hbm_bytes,
            "model {} ({} GB) does not fit on {} ({} GB)",
            llm.name,
            llm.weight_bytes() / 1_000_000_000,
            gpu.name,
            gpu.hbm_bytes / 1_000_000_000,
        );
        PerfModel { llm, gpu }
    }

    /// The served model.
    #[must_use]
    pub fn llm(&self) -> &LlmSpec {
        &self.llm
    }

    /// The executing GPU.
    #[must_use]
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Latency of a prefill iteration processing prompts with the given
    /// token counts in one pass (vLLM batches waiting prefills together).
    ///
    /// Compute-bound: `overhead + Σ 2·P·Tᵢ/F + Σ attn(Tᵢ²)/F`.
    #[must_use]
    pub fn prefill_time_batch(&self, prompt_tokens: &[u32]) -> SimDuration {
        let flops_rate = self.gpu.effective_flops();
        let mut flops = 0.0;
        for &t in prompt_tokens {
            let t = f64::from(t);
            flops += self.llm.flops_per_token() * t;
            // Self-attention over the prompt: average context T/2 per token.
            flops += self.llm.attention_flops_per_token((t / 2.0) as u64) * t;
        }
        let secs = self.gpu.iteration_overhead_s
            + flops / flops_rate
            + self.gpu.per_sequence_overhead_s * prompt_tokens.len() as f64;
        SimDuration::from_secs_f64(secs)
    }

    /// Latency of prefilling a single prompt of `tokens` tokens.
    #[must_use]
    pub fn prefill_time(&self, tokens: u32) -> SimDuration {
        self.prefill_time_batch(&[tokens])
    }

    /// Latency of one decode iteration: every sequence in `batch` advances
    /// by one token.
    ///
    /// Memory-bound: `overhead + (weights + Σ KVᵢ)/BW + per-seq overhead`.
    /// An empty batch costs nothing (the instance simply idles).
    #[must_use]
    pub fn decode_step_time(&self, batch: DecodeBatch) -> SimDuration {
        if batch.num_seqs == 0 {
            return SimDuration::ZERO;
        }
        let bw = self.gpu.effective_bandwidth();
        let weight_read = self.llm.weight_bytes() as f64 / bw;
        let kv_read = (batch.total_context_tokens * self.llm.kv_bytes_per_token()) as f64 / bw;
        let secs = self.gpu.iteration_overhead_s
            + weight_read
            + kv_read
            + self.gpu.per_sequence_overhead_s * f64::from(batch.num_seqs);
        SimDuration::from_secs_f64(secs)
    }

    /// Time to move `kv_tokens` worth of KV cache across the host link
    /// (offload to CPU memory, or reload back to HBM).
    #[must_use]
    pub fn pcie_transfer_time(&self, kv_tokens: u64) -> SimDuration {
        let bytes = (kv_tokens * self.llm.kv_bytes_per_token()) as f64;
        SimDuration::from_secs_f64(bytes / self.gpu.pcie_bandwidth)
    }

    /// HBM bytes available for KV cache after weights and the activation
    /// reserve.
    #[must_use]
    pub fn kv_capacity_bytes(&self) -> u64 {
        self.gpu
            .hbm_bytes
            .saturating_sub(self.llm.weight_bytes())
            .saturating_sub(self.gpu.activation_reserve_bytes)
    }

    /// KV capacity expressed in whole tokens.
    #[must_use]
    pub fn kv_capacity_tokens(&self) -> u64 {
        self.kv_capacity_bytes() / self.llm.kv_bytes_per_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn h100_32b() -> PerfModel {
        PerfModel::new(
            LlmSpec::deepseek_r1_distill_qwen_32b(),
            GpuSpec::h100_96gb(),
        )
    }

    #[test]
    fn decode_step_is_roughly_30ms() {
        let perf = h100_32b();
        let t = perf.decode_step_time(DecodeBatch {
            num_seqs: 1,
            total_context_tokens: 512,
        });
        let ms = t.as_millis_f64();
        assert!(
            (20.0..40.0).contains(&ms),
            "decode step {ms} ms out of band"
        );
    }

    #[test]
    fn prefill_of_128_tokens_is_tens_of_ms() {
        let perf = h100_32b();
        let ms = perf.prefill_time(128).as_millis_f64();
        assert!((5.0..60.0).contains(&ms), "prefill {ms} ms out of band");
    }

    #[test]
    fn empty_decode_batch_is_free() {
        let perf = h100_32b();
        assert_eq!(
            perf.decode_step_time(DecodeBatch::default()),
            SimDuration::ZERO
        );
    }

    #[test]
    fn kv_capacity_is_positive_and_reasonable() {
        let perf = h100_32b();
        let tokens = perf.kv_capacity_tokens();
        // ~26 GB of KV at 256 KiB/token => ~100k tokens.
        assert!(
            (50_000..200_000).contains(&tokens),
            "kv capacity {tokens} tokens out of band"
        );
    }

    #[test]
    fn migration_of_2048_tokens_over_pcie_is_about_10ms() {
        // 2048 tokens x 256 KiB = 512 MiB; at 50 GB/s that is ~10.7 ms.
        let perf = h100_32b();
        let ms = perf.pcie_transfer_time(2048).as_millis_f64();
        assert!(
            (5.0..20.0).contains(&ms),
            "pcie transfer {ms} ms out of band"
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_model_rejected() {
        let mut llm = LlmSpec::deepseek_r1_distill_qwen_32b();
        llm.params = 200_000_000_000;
        let _ = PerfModel::new(llm, GpuSpec::h100_96gb());
    }

    proptest! {
        /// Decode latency is monotone in both batch size and context.
        #[test]
        fn prop_decode_monotone(
            seqs in 1u32..256,
            ctx in 0u64..500_000,
            extra_seqs in 0u32..64,
            extra_ctx in 0u64..100_000,
        ) {
            let perf = h100_32b();
            let base = perf.decode_step_time(DecodeBatch { num_seqs: seqs, total_context_tokens: ctx });
            let more = perf.decode_step_time(DecodeBatch {
                num_seqs: seqs + extra_seqs,
                total_context_tokens: ctx + extra_ctx,
            });
            prop_assert!(more >= base);
        }

        /// Prefill latency is monotone in prompt length and superadditive
        /// batching never beats per-prompt overhead savings.
        #[test]
        fn prop_prefill_monotone(a in 1u32..8192, b in 1u32..8192) {
            let perf = h100_32b();
            let t_a = perf.prefill_time(a);
            let t_ab = perf.prefill_time_batch(&[a, b]);
            prop_assert!(t_ab > t_a);
            // Batching two prompts in one iteration saves one fixed overhead.
            let separate = t_a + perf.prefill_time(b);
            prop_assert!(t_ab < separate);
        }

        /// PCIe transfers scale linearly with token count (up to the 1 ns
        /// quantization of `SimDuration`).
        #[test]
        fn prop_pcie_linear(tokens in 1u64..100_000) {
            let perf = h100_32b();
            let one = perf.pcie_transfer_time(tokens).as_nanos() as i128;
            let two = perf.pcie_transfer_time(2 * tokens).as_nanos() as i128;
            prop_assert!((two - 2 * one).abs() <= 2);
        }
    }
}
