//! Closed-form reference latencies for simulator validation.
//!
//! The paper validates its simulator against a real H100 node (§V-A, MAPE
//! 1.62% end-to-end). We have no H100, so the reproduction pins the engine
//! to analytic ground truth instead: an isolated request's end-to-end
//! latency must equal `prefill + Σ decode-steps` exactly, and the engine
//! tests in `pascal-core` assert bit-equality against these functions.

use pascal_sim::SimDuration;

use crate::perf::{DecodeBatch, PerfModel};

/// Closed-form end-to-end latency of a single request running alone on one
/// instance: one prefill pass over `prompt_tokens`, then `output_tokens`
/// decode steps with a context that grows by one token per step.
///
/// The first output token is produced by the prefill pass itself (vLLM
/// semantics), so `output_tokens` counts only the decoded tokens.
///
/// # Examples
///
/// ```
/// use pascal_model::{GpuSpec, LlmSpec, PerfModel};
/// use pascal_model::validate::isolated_request_latency;
///
/// let perf = PerfModel::new(LlmSpec::deepseek_r1_distill_qwen_32b(), GpuSpec::h100_96gb());
/// let e2e = isolated_request_latency(&perf, 128, 100);
/// assert!(e2e > perf.prefill_time(128));
/// ```
#[must_use]
pub fn isolated_request_latency(
    perf: &PerfModel,
    prompt_tokens: u32,
    output_tokens: u32,
) -> SimDuration {
    let mut total = perf.prefill_time(prompt_tokens);
    // Prefill emitted token 1, so the first decode sees prompt + 1 context.
    let first_context = u64::from(prompt_tokens) + 1;
    for step in 0..u64::from(output_tokens) {
        total += perf.decode_step_time(DecodeBatch {
            num_seqs: 1,
            total_context_tokens: first_context + step,
        });
    }
    total
}

/// Closed-form latency for `n` identical co-batched requests (they all fit
/// in memory and start simultaneously): shared decode iterations whose cost
/// reflects the combined KV footprint.
#[must_use]
pub fn cobatched_decode_latency(
    perf: &PerfModel,
    num_seqs: u32,
    start_context: u64,
    output_tokens: u32,
) -> SimDuration {
    let mut total = SimDuration::ZERO;
    for step in 0..u64::from(output_tokens) {
        total += perf.decode_step_time(DecodeBatch {
            num_seqs,
            total_context_tokens: (start_context + step) * u64::from(num_seqs),
        });
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuSpec;
    use crate::llm::LlmSpec;

    fn perf() -> PerfModel {
        PerfModel::new(
            LlmSpec::deepseek_r1_distill_qwen_32b(),
            GpuSpec::h100_96gb(),
        )
    }

    #[test]
    fn isolated_latency_decomposes() {
        let p = perf();
        let zero_out = isolated_request_latency(&p, 128, 0);
        assert_eq!(zero_out, p.prefill_time(128));
        let one_out = isolated_request_latency(&p, 128, 1);
        let expected = p.prefill_time(128)
            + p.decode_step_time(DecodeBatch {
                num_seqs: 1,
                total_context_tokens: 129,
            });
        assert_eq!(one_out, expected);
    }

    #[test]
    fn isolated_latency_monotone_in_output() {
        let p = perf();
        let short = isolated_request_latency(&p, 128, 10);
        let long = isolated_request_latency(&p, 128, 20);
        assert!(long > short);
    }

    #[test]
    fn per_token_decode_speed_matches_paper_reference() {
        // The paper's reference point: ~30 ms per decoded token for an
        // aggressive system. Our model should be within 2x of that.
        let p = perf();
        let n = 100;
        let total = isolated_request_latency(&p, 128, n) - p.prefill_time(128);
        let per_token_ms = total.as_millis_f64() / f64::from(n);
        assert!(
            (15.0..60.0).contains(&per_token_ms),
            "per-token latency {per_token_ms} ms out of band"
        );
    }

    #[test]
    fn cobatching_amortizes_weight_reads() {
        // 8 requests batched together must finish far sooner than 8 run
        // back-to-back, because decode is dominated by the weight read.
        let p = perf();
        let batched = cobatched_decode_latency(&p, 8, 128, 100);
        let serial = cobatched_decode_latency(&p, 1, 128, 100) * 8;
        assert!(batched < serial.mul_f64(0.3));
    }

    #[test]
    fn cobatched_cost_grows_with_batch() {
        let p = perf();
        let one = cobatched_decode_latency(&p, 1, 128, 50);
        let eight = cobatched_decode_latency(&p, 8, 128, 50);
        assert!(eight > one);
    }
}
