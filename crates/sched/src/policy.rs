//! The scheduling policies: FCFS, Round-Robin, and PASCAL.
//!
//! All three are expressed through the same interface the serving engine
//! consumes:
//!
//! * a **priority key** per request — every iteration, the engine sorts the
//!   instance's requests by key and grants GPU-resident KV memory to the
//!   longest prefix that fits. Requests outside the prefix are evicted
//!   (offloaded) or left waiting (blocked). This single mechanism yields all
//!   three behaviours of Fig. 2:
//!   - FCFS keys by arrival, so newcomers queue behind long-running requests
//!     (head-of-line blocking) and memory growth evicts the youngest;
//!   - RR keys by consumed token quanta, so requests that have decoded more
//!     quanta yield to fresher ones;
//!   - PASCAL keys by (queue class, quanta): reasoning requests occupy the
//!     high-priority class and always outrank answering ones (§IV-C), with
//!     per-class round-robin and conditional demotion of oversized
//!     reasoning requests.
//! * an **instance placement** rule for new requests (Algorithm 1 for
//!   PASCAL; smallest-KV-footprint for the baselines, §V-A);
//! * a **migration decision** at phase transitions (Algorithm 2 plus the
//!   adaptive override for PASCAL; baselines never migrate).

use pascal_cluster::{InstanceStats, RequestState};
use pascal_sim::SimDuration;
use pascal_workload::Phase;

/// Sort key of a request for intra-instance scheduling; lower = higher
/// priority. Ordering: queue class, consumed quanta, arrival time, id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct PriorityKey {
    /// 0 = high-priority (reasoning) queue, 1 = low-priority (answering or
    /// demoted) queue. Always 0 for phase-unaware baselines.
    pub class: u8,
    /// Completed round-robin quanta (always 0 under FCFS).
    pub quanta: u32,
    /// Arrival time in nanoseconds (FIFO tie-break).
    pub arrival_nanos: u64,
    /// Request id (final deterministic tie-break).
    pub id: u64,
}

/// Configuration of the PASCAL scheduler (§IV, §V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PascalConfig {
    /// Token quantum of the per-queue round-robin (paper: 500).
    pub quantum: u32,
    /// Reasoning requests whose generated tokens exceed this are demoted to
    /// the low-priority queue (paper: 5000).
    pub demotion_threshold_tokens: u32,
    /// Whether phase-transition migration is enabled; `false` gives the
    /// PASCAL(NoMigration) ablation of Fig. 13.
    pub migration_enabled: bool,
    /// Whether the adaptive memory-aware override of Fig. 7 is applied;
    /// `false` gives the PASCAL(NonAdaptive) ablation of Fig. 15.
    pub adaptive_migration: bool,
    /// GPU blocks of growth headroom the adaptive override requires on the
    /// current instance before it keeps a request home.
    pub adaptive_headroom_blocks: u64,
}

impl Default for PascalConfig {
    fn default() -> Self {
        PascalConfig {
            quantum: 500,
            demotion_threshold_tokens: 5_000,
            migration_enabled: true,
            adaptive_migration: true,
            adaptive_headroom_blocks: 8,
        }
    }
}

/// A scheduling policy instance.
///
/// # Examples
///
/// ```
/// use pascal_sched::{PascalConfig, SchedPolicy};
///
/// let pascal = SchedPolicy::pascal(PascalConfig::default());
/// assert_eq!(pascal.name(), "PASCAL");
/// assert_eq!(SchedPolicy::Fcfs.quantum(), u32::MAX);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// vLLM's default: strict arrival order, block newcomers under memory
    /// pressure, preempt the most recently arrived on growth (§II-C).
    Fcfs,
    /// Preemptive round-robin with a fixed token quantum (§II-C; quantum
    /// 500 in §V-A).
    RoundRobin {
        /// Tokens a request may decode before its priority drops.
        quantum: u32,
    },
    /// The paper's phase-aware hierarchical scheduler (§IV).
    Pascal(PascalConfig),
}

/// What to do with a request that just finished its reasoning phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrationDecision {
    /// Keep serving it on its current instance.
    Stay,
    /// Ship its KV cache to the given instance (§IV-B).
    MigrateTo(u32),
    /// Algorithm 2 chose the given destination, but the predictive
    /// cost/benefit test vetoed the transfer: the predicted remaining
    /// service did not justify the KV transfer cost. Mechanically the
    /// request stays home; the variant is distinct so controllers can count
    /// how often prediction diverges from the reactive answer.
    VetoedByCost(u32),
}

/// Cost/benefit inputs of a predictive migration decision.
///
/// The controller supplies the physical transfer cost (from
/// `pascal-model`'s link model) and the predicted remaining service of the
/// request (from `pascal-predict`); the policy weighs one against the other.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MigrationCost {
    /// Time to push the request's KV cache through the fabric, queueing
    /// excluded.
    pub transfer_time: SimDuration,
    /// Predicted wall-clock service the request still has to receive
    /// (remaining tokens × pacing target). `None` when no absolute length
    /// estimate is available — the test then never vetoes.
    pub predicted_remaining_service: Option<SimDuration>,
    /// How many transfer-times of predicted remaining service a migration
    /// must buy to be worthwhile. `1.0` is the break-even rule; larger
    /// values veto more aggressively; `0.0` disables the test (reactive
    /// behavior).
    pub min_benefit_ratio: f64,
}

impl MigrationCost {
    /// Whether the predicted remaining service fails to justify the
    /// transfer — the veto condition.
    #[must_use]
    pub fn vetoes(&self) -> bool {
        match self.predicted_remaining_service {
            Some(service) => service < self.transfer_time.mul_f64(self.min_benefit_ratio),
            None => false,
        }
    }
}

impl SchedPolicy {
    /// Round-robin with the paper's 500-token quantum.
    #[must_use]
    pub fn round_robin_default() -> Self {
        SchedPolicy::RoundRobin { quantum: 500 }
    }

    /// PASCAL with the given configuration.
    #[must_use]
    pub fn pascal(config: PascalConfig) -> Self {
        SchedPolicy::Pascal(config)
    }

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Fcfs => "FCFS",
            SchedPolicy::RoundRobin { .. } => "RR",
            SchedPolicy::Pascal(c) => {
                if !c.migration_enabled {
                    "PASCAL(NoMigration)"
                } else if !c.adaptive_migration {
                    "PASCAL(NonAdaptive)"
                } else {
                    "PASCAL"
                }
            }
        }
    }

    /// The token quantum (requests never lose priority under FCFS).
    #[must_use]
    pub fn quantum(&self) -> u32 {
        match self {
            SchedPolicy::Fcfs => u32::MAX,
            SchedPolicy::RoundRobin { quantum } => *quantum,
            SchedPolicy::Pascal(c) => c.quantum,
        }
    }

    /// Whether quanta counters reset when a request enters the answering
    /// phase. PASCAL's low-priority queue runs its own round-robin, so a
    /// freshly transitioned request starts a new quantum; RR is
    /// phase-unaware and keeps accumulating (§V-B's discussion of RR's
    /// implicit per-request hierarchy).
    #[must_use]
    pub fn resets_quanta_at_transition(&self) -> bool {
        matches!(self, SchedPolicy::Pascal(_))
    }

    /// PASCAL's conditional demotion threshold, if any (§IV-C).
    #[must_use]
    pub fn demotion_threshold_tokens(&self) -> Option<u32> {
        match self {
            SchedPolicy::Pascal(c) => Some(c.demotion_threshold_tokens),
            _ => None,
        }
    }

    /// Whether the Fig. 7 adaptive memory check is active. When it is, the
    /// engine also refuses to launch a migration whose destination cannot
    /// reserve the KV blocks right now (the race-free form of the same
    /// check); NonAdaptive migrates blindly and may land in CPU memory.
    #[must_use]
    pub fn adaptive_migration(&self) -> bool {
        matches!(
            self,
            SchedPolicy::Pascal(PascalConfig {
                migration_enabled: true,
                adaptive_migration: true,
                ..
            })
        )
    }

    /// Intra-instance priority key of `req` (lower sorts first).
    #[must_use]
    pub fn priority_key(&self, req: &RequestState) -> PriorityKey {
        let class = match self {
            SchedPolicy::Pascal(_) => {
                if req.phase == Phase::Reasoning && !req.demoted {
                    0
                } else {
                    1
                }
            }
            _ => 0,
        };
        let quanta = match self {
            SchedPolicy::Fcfs => 0,
            _ => req.quanta_used,
        };
        PriorityKey {
            class,
            quanta,
            arrival_nanos: req.spec.arrival.as_nanos(),
            id: req.spec.id.0,
        }
    }

    /// Instance selection for a newly arrived (reasoning) request.
    ///
    /// Baselines place on the instance with the smallest KV footprint
    /// (§V-A); PASCAL runs Algorithm 1: restrict to SLO-healthy instances
    /// (`t_i`), fall back to all if none qualify, then pick the smallest
    /// GPU+CPU KV footprint `m_i`. When a length predictor is active the
    /// engine fills [`InstanceStats::predicted_future_kv_bytes`], and
    /// PASCAL's `m_i` becomes *current plus predicted future* footprint —
    /// predictive Algorithm 1 placement. Without a predictor that term is
    /// zero and the ranking is exactly the paper's.
    ///
    /// # Panics
    ///
    /// Panics if `stats` is empty.
    #[must_use]
    pub fn place_new_request(&self, stats: &[InstanceStats]) -> u32 {
        assert!(
            !stats.is_empty(),
            "placement requires at least one instance"
        );
        match self {
            SchedPolicy::Fcfs | SchedPolicy::RoundRobin { .. } => {
                min_by_key_stable(stats.iter(), |s| s.kv_footprint_bytes).instance
            }
            SchedPolicy::Pascal(_) => {
                let healthy: Vec<&InstanceStats> = stats.iter().filter(|s| s.slo_ok).collect();
                let pool: Vec<&InstanceStats> = if healthy.is_empty() {
                    stats.iter().collect()
                } else {
                    healthy
                };
                min_by_key_stable(pool, |s| s.predicted_total_kv_bytes()).instance
            }
        }
    }

    /// Migration decision at a reasoning→answering transition (Algorithm 2
    /// plus the Fig. 7 adaptive override).
    ///
    /// `current` is the instance the request lives on, `needed_blocks` the
    /// GPU blocks its KV requires at the destination.
    ///
    /// # Panics
    ///
    /// Panics if `stats` is empty or `current` is not among them.
    #[must_use]
    pub fn migration_decision(
        &self,
        current: u32,
        needed_blocks: u64,
        stats: &[InstanceStats],
    ) -> MigrationDecision {
        let SchedPolicy::Pascal(config) = self else {
            return MigrationDecision::Stay;
        };
        if !config.migration_enabled {
            return MigrationDecision::Stay;
        }
        let current_stats = stats
            .iter()
            .find(|s| s.instance == current)
            .expect("current instance must be in stats");

        // Algorithm 2, lines 3-10. Ties on the small integer counts are
        // broken by fresh-answering count and then KV footprint, so equally
        // reasoning-loaded instances share the migrated answering load
        // instead of funnelling it into one dumping-ground instance.
        let healthy: Vec<&InstanceStats> = stats.iter().filter(|s| s.slo_ok).collect();
        // Footprint tie-breaks use the predicted total (current + predicted
        // future growth); identical to the paper's current-footprint rule
        // whenever no predictor is active.
        let target = if healthy.is_empty() {
            // Fallback: rank by r_i + a_i across all instances.
            min_by_key_stable(stats.iter(), |s| {
                (
                    u64::from(s.reasoning_count) + u64::from(s.fresh_answering_count),
                    s.predicted_total_kv_bytes(),
                )
            })
        } else {
            min_by_key_stable(healthy, |s| {
                (
                    u64::from(s.reasoning_count),
                    u64::from(s.fresh_answering_count),
                    s.predicted_total_kv_bytes(),
                )
            })
        };

        if target.instance == current {
            return MigrationDecision::Stay;
        }

        // Adaptive override (Fig. 7): if the chosen target cannot hold the
        // KV cache but the current instance still has growth headroom, keep
        // the request home to avoid a guaranteed stall on arrival.
        if config.adaptive_migration
            && !target.fits_blocks(needed_blocks)
            && current_stats.fits_blocks(config.adaptive_headroom_blocks)
        {
            return MigrationDecision::Stay;
        }

        MigrationDecision::MigrateTo(target.instance)
    }

    /// Landing instance for a request migrating *into* this pool from
    /// another shard: the Algorithm 2 ranking applied to the destination
    /// shard's stats, restricted to SLO-healthy instances. Under the
    /// adaptive policy an instance that cannot hold `needed_blocks` right
    /// now is skipped (the cross-shard form of the Fig. 7 override);
    /// NonAdaptive accepts the best-ranked instance blindly and may land
    /// in CPU memory. `None` when no instance qualifies — the escape is
    /// then abandoned and the request stays home.
    #[must_use]
    pub fn cross_shard_instance(&self, needed_blocks: u64, stats: &[InstanceStats]) -> Option<u32> {
        let SchedPolicy::Pascal(config) = self else {
            return None;
        };
        if !config.migration_enabled {
            return None;
        }
        let mut pool: Vec<&InstanceStats> = stats.iter().filter(|s| s.slo_ok).collect();
        if config.adaptive_migration {
            pool.retain(|s| s.fits_blocks(needed_blocks));
        }
        if pool.is_empty() {
            return None;
        }
        Some(
            min_by_key_stable(pool, |s| {
                (
                    u64::from(s.reasoning_count),
                    u64::from(s.fresh_answering_count),
                    s.predicted_total_kv_bytes(),
                )
            })
            .instance,
        )
    }

    /// [`SchedPolicy::migration_decision`] extended with the predictive
    /// cost/benefit test: when Algorithm 2 picks a destination but `cost`
    /// says the predicted remaining service is below the transfer cost, the
    /// decision becomes [`MigrationDecision::VetoedByCost`] instead of
    /// [`MigrationDecision::MigrateTo`].
    ///
    /// With `cost = None` (no predictor configured) this is exactly the
    /// reactive decision.
    ///
    /// # Panics
    ///
    /// Panics if `stats` is empty or `current` is not among them.
    #[must_use]
    pub fn predictive_migration_decision(
        &self,
        current: u32,
        needed_blocks: u64,
        stats: &[InstanceStats],
        cost: Option<MigrationCost>,
    ) -> MigrationDecision {
        match self.migration_decision(current, needed_blocks, stats) {
            MigrationDecision::MigrateTo(dest) if cost.is_some_and(|c| c.vetoes()) => {
                MigrationDecision::VetoedByCost(dest)
            }
            other => other,
        }
    }
}

/// First minimum by key in iteration order — deterministic tie-breaking on
/// instance order.
fn min_by_key_stable<'a, I, K>(iter: I, key: impl Fn(&InstanceStats) -> K) -> &'a InstanceStats
where
    I: IntoIterator<Item = &'a InstanceStats>,
    K: Ord,
{
    let mut best: Option<(&InstanceStats, K)> = None;
    for s in iter {
        let k = key(s);
        match &best {
            Some((_, bk)) if *bk <= k => {}
            _ => best = Some((s, k)),
        }
    }
    best.expect("non-empty iterator").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_sim::SimTime;
    use pascal_workload::{RequestId, RequestSpec};
    use proptest::prelude::*;

    fn stats(
        instance: u32,
        slo_ok: bool,
        footprint: u64,
        reasoning: u32,
        fresh_ans: u32,
        free: Option<u64>,
    ) -> InstanceStats {
        InstanceStats {
            instance,
            slo_ok,
            kv_footprint_bytes: footprint,
            reasoning_count: reasoning,
            fresh_answering_count: fresh_ans,
            gpu_free_blocks: free,
            predicted_future_kv_bytes: 0,
        }
    }

    fn request(id: u64, arrival_s: f64) -> RequestState {
        let spec = RequestSpec::new(
            RequestId(id),
            SimTime::from_secs_f64(arrival_s),
            128,
            100,
            100,
        );
        RequestState::new(spec, 0, SimDuration::from_millis(100))
    }

    #[test]
    fn fcfs_orders_by_arrival_only() {
        let p = SchedPolicy::Fcfs;
        let mut early = request(1, 1.0);
        early.quanta_used = 50; // FCFS ignores quanta
        let late = request(0, 2.0);
        assert!(p.priority_key(&early) < p.priority_key(&late));
    }

    #[test]
    fn rr_orders_by_quanta_then_arrival() {
        let p = SchedPolicy::round_robin_default();
        let mut veteran = request(0, 1.0);
        veteran.quanta_used = 2;
        let newcomer = request(1, 5.0);
        assert!(p.priority_key(&newcomer) < p.priority_key(&veteran));
        let same_quanta = request(2, 0.5);
        assert!(p.priority_key(&same_quanta) < p.priority_key(&newcomer));
    }

    #[test]
    fn pascal_reasoning_outranks_answering_always() {
        let p = SchedPolicy::pascal(PascalConfig::default());
        let mut reasoning = request(0, 9.0);
        reasoning.quanta_used = 10;
        let mut answering = request(1, 1.0);
        answering.phase = Phase::Answering;
        answering.quanta_used = 0;
        assert!(p.priority_key(&reasoning) < p.priority_key(&answering));
    }

    #[test]
    fn pascal_demoted_reasoning_drops_to_low_queue() {
        let p = SchedPolicy::pascal(PascalConfig::default());
        let mut demoted = request(0, 1.0);
        demoted.demoted = true;
        let mut answering = request(1, 2.0);
        answering.phase = Phase::Answering;
        let key_d = p.priority_key(&demoted);
        let key_a = p.priority_key(&answering);
        assert_eq!(key_d.class, 1);
        assert_eq!(key_a.class, 1);
        assert!(key_d < key_a, "within low queue, RR order applies");
    }

    #[test]
    fn baseline_placement_minimizes_footprint() {
        let p = SchedPolicy::Fcfs;
        let s = vec![
            stats(0, true, 500, 0, 0, Some(10)),
            stats(1, false, 100, 0, 0, Some(0)),
            stats(2, true, 300, 0, 0, Some(5)),
        ];
        // Baselines ignore SLO state entirely.
        assert_eq!(p.place_new_request(&s), 1);
    }

    #[test]
    fn algorithm1_filters_by_slo_then_min_footprint() {
        let p = SchedPolicy::pascal(PascalConfig::default());
        let s = vec![
            stats(0, true, 500, 0, 0, Some(10)),
            stats(1, false, 100, 0, 0, Some(0)), // unhealthy, excluded
            stats(2, true, 300, 0, 0, Some(5)),
        ];
        assert_eq!(p.place_new_request(&s), 2);
    }

    #[test]
    fn algorithm1_falls_back_when_no_instance_healthy() {
        let p = SchedPolicy::pascal(PascalConfig::default());
        let s = vec![
            stats(0, false, 500, 0, 0, Some(10)),
            stats(1, false, 100, 0, 0, Some(0)),
        ];
        assert_eq!(p.place_new_request(&s), 1, "min m_i among all");
    }

    #[test]
    fn algorithm2_picks_fewest_reasoning_among_healthy() {
        let p = SchedPolicy::pascal(PascalConfig::default());
        let s = vec![
            stats(0, true, 0, 5, 0, Some(100)),
            stats(1, false, 0, 0, 0, Some(100)), // unhealthy
            stats(2, true, 0, 2, 9, Some(100)),
        ];
        assert_eq!(
            p.migration_decision(0, 10, &s),
            MigrationDecision::MigrateTo(2)
        );
    }

    #[test]
    fn algorithm2_fallback_uses_r_plus_a() {
        let p = SchedPolicy::pascal(PascalConfig::default());
        let s = vec![
            stats(0, false, 0, 5, 0, Some(100)), // r+a = 5
            stats(1, false, 0, 2, 9, Some(100)), // r+a = 11
            stats(2, false, 0, 3, 1, Some(100)), // r+a = 4
        ];
        assert_eq!(
            p.migration_decision(0, 10, &s),
            MigrationDecision::MigrateTo(2)
        );
    }

    #[test]
    fn migration_to_self_is_stay() {
        let p = SchedPolicy::pascal(PascalConfig::default());
        let s = vec![stats(0, true, 0, 1, 0, Some(100))];
        assert_eq!(p.migration_decision(0, 10, &s), MigrationDecision::Stay);
    }

    #[test]
    fn adaptive_override_keeps_request_home() {
        // Fig. 7: target has fewest reasoning requests but no memory, and
        // the source still has room -> stay.
        let p = SchedPolicy::pascal(PascalConfig::default());
        let s = vec![
            stats(0, true, 0, 5, 0, Some(50)), // current: room available
            stats(2, true, 0, 0, 0, Some(1)),  // target: full
        ];
        assert_eq!(p.migration_decision(0, 10, &s), MigrationDecision::Stay);
    }

    #[test]
    fn non_adaptive_migrates_anyway() {
        let p = SchedPolicy::pascal(PascalConfig {
            adaptive_migration: false,
            ..PascalConfig::default()
        });
        let s = vec![
            stats(0, true, 0, 5, 0, Some(50)),
            stats(2, true, 0, 0, 0, Some(1)),
        ];
        assert_eq!(
            p.migration_decision(0, 10, &s),
            MigrationDecision::MigrateTo(2)
        );
    }

    #[test]
    fn adaptive_override_requires_source_headroom() {
        // Target full AND source full -> migrate anyway (nothing to save).
        let p = SchedPolicy::pascal(PascalConfig::default());
        let s = vec![
            stats(0, true, 0, 5, 0, Some(0)), // current also full
            stats(2, true, 0, 0, 0, Some(1)),
        ];
        assert_eq!(
            p.migration_decision(0, 10, &s),
            MigrationDecision::MigrateTo(2)
        );
    }

    #[test]
    fn no_migration_variant_always_stays() {
        let p = SchedPolicy::pascal(PascalConfig {
            migration_enabled: false,
            ..PascalConfig::default()
        });
        let s = vec![
            stats(0, true, 0, 5, 0, Some(50)),
            stats(2, true, 0, 0, 0, Some(100)),
        ];
        assert_eq!(p.migration_decision(0, 10, &s), MigrationDecision::Stay);
    }

    #[test]
    fn baselines_never_migrate() {
        let s = vec![
            stats(0, true, 0, 5, 0, Some(50)),
            stats(2, true, 0, 0, 0, Some(100)),
        ];
        assert_eq!(
            SchedPolicy::Fcfs.migration_decision(0, 10, &s),
            MigrationDecision::Stay
        );
        assert_eq!(
            SchedPolicy::round_robin_default().migration_decision(0, 10, &s),
            MigrationDecision::Stay
        );
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(SchedPolicy::Fcfs.name(), "FCFS");
        assert_eq!(SchedPolicy::round_robin_default().name(), "RR");
        assert_eq!(
            SchedPolicy::pascal(PascalConfig::default()).name(),
            "PASCAL"
        );
        let no_mig = PascalConfig {
            migration_enabled: false,
            ..PascalConfig::default()
        };
        assert_eq!(SchedPolicy::pascal(no_mig).name(), "PASCAL(NoMigration)");
        let non_adaptive = PascalConfig {
            adaptive_migration: false,
            ..PascalConfig::default()
        };
        assert_eq!(
            SchedPolicy::pascal(non_adaptive).name(),
            "PASCAL(NonAdaptive)"
        );
    }

    #[test]
    fn quantum_reset_only_for_pascal() {
        assert!(SchedPolicy::pascal(PascalConfig::default()).resets_quanta_at_transition());
        assert!(!SchedPolicy::round_robin_default().resets_quanta_at_transition());
        assert!(!SchedPolicy::Fcfs.resets_quanta_at_transition());
    }

    #[test]
    fn predictive_placement_ranks_by_current_plus_predicted() {
        let p = SchedPolicy::pascal(PascalConfig::default());
        let mut s = vec![
            stats(0, true, 100, 0, 0, Some(10)),
            stats(1, true, 300, 0, 0, Some(10)),
        ];
        // Reactively, instance 0 wins on current footprint …
        assert_eq!(p.place_new_request(&s), 0);
        // … but a predictor expecting 500 more bytes of growth there flips
        // the choice to instance 1.
        s[0].predicted_future_kv_bytes = 500;
        assert_eq!(p.place_new_request(&s), 1);
        // Baselines ignore predictions entirely.
        assert_eq!(SchedPolicy::Fcfs.place_new_request(&s), 0);
    }

    #[test]
    fn predictive_footprint_breaks_migration_ties() {
        let p = SchedPolicy::pascal(PascalConfig::default());
        let mut s = vec![
            stats(0, true, 0, 5, 0, Some(100)),
            stats(1, true, 10, 1, 1, Some(100)),
            stats(2, true, 20, 1, 1, Some(100)),
        ];
        assert_eq!(
            p.migration_decision(0, 10, &s),
            MigrationDecision::MigrateTo(1)
        );
        s[1].predicted_future_kv_bytes = 100;
        assert_eq!(
            p.migration_decision(0, 10, &s),
            MigrationDecision::MigrateTo(2)
        );
    }

    #[test]
    fn cost_veto_turns_migrate_into_veto() {
        let p = SchedPolicy::pascal(PascalConfig::default());
        let s = vec![
            stats(0, true, 0, 5, 0, Some(100)),
            stats(2, true, 0, 0, 0, Some(100)),
        ];
        let cheap = MigrationCost {
            transfer_time: SimDuration::from_millis(40),
            predicted_remaining_service: Some(SimDuration::from_secs_f64(10.0)),
            min_benefit_ratio: 1.0,
        };
        assert_eq!(
            p.predictive_migration_decision(0, 10, &s, Some(cheap)),
            MigrationDecision::MigrateTo(2)
        );
        let wasteful = MigrationCost {
            transfer_time: SimDuration::from_millis(40),
            predicted_remaining_service: Some(SimDuration::from_millis(10)),
            min_benefit_ratio: 1.0,
        };
        assert_eq!(
            p.predictive_migration_decision(0, 10, &s, Some(wasteful)),
            MigrationDecision::VetoedByCost(2)
        );
        // No predictor estimate, or no cost inputs at all: reactive answer.
        let unknown = MigrationCost {
            predicted_remaining_service: None,
            ..wasteful
        };
        assert_eq!(
            p.predictive_migration_decision(0, 10, &s, Some(unknown)),
            MigrationDecision::MigrateTo(2)
        );
        assert_eq!(
            p.predictive_migration_decision(0, 10, &s, None),
            MigrationDecision::MigrateTo(2)
        );
    }

    #[test]
    fn cost_veto_never_invents_migrations() {
        // A Stay decision stays a Stay no matter how favorable the cost.
        let p = SchedPolicy::pascal(PascalConfig {
            migration_enabled: false,
            ..PascalConfig::default()
        });
        let s = vec![
            stats(0, true, 0, 5, 0, Some(50)),
            stats(2, true, 0, 0, 0, Some(100)),
        ];
        let cost = MigrationCost {
            transfer_time: SimDuration::from_millis(1),
            predicted_remaining_service: Some(SimDuration::from_secs_f64(100.0)),
            min_benefit_ratio: 1.0,
        };
        assert_eq!(
            p.predictive_migration_decision(0, 10, &s, Some(cost)),
            MigrationDecision::Stay
        );
    }

    proptest! {
        /// The cost/benefit invariant: whenever the predicted remaining
        /// service is below the (ratio-scaled) transfer cost, the predictive
        /// decision never launches a migration — regardless of cluster
        /// state.
        #[test]
        fn prop_underwater_requests_never_migrate(
            transfer_ms in 1.0f64..500.0,
            service_fraction in 0.0f64..1.0,
            ratio in 0.5f64..8.0,
            reasoning in proptest::collection::vec(0u32..12, 2..6),
            free in proptest::collection::vec(0u64..200, 2..6),
        ) {
            let n = reasoning.len().min(free.len());
            let s: Vec<InstanceStats> = (0..n)
                .map(|i| stats(i as u32, true, 0, reasoning[i], 0, Some(free[i])))
                .collect();
            let threshold = transfer_ms * ratio;
            // Strictly below the scaled cost, by construction.
            let service = SimDuration::from_secs_f64(
                threshold * service_fraction * 0.999 / 1000.0,
            );
            let cost = MigrationCost {
                transfer_time: SimDuration::from_secs_f64(transfer_ms / 1000.0),
                predicted_remaining_service: Some(service),
                min_benefit_ratio: ratio,
            };
            let p = SchedPolicy::pascal(PascalConfig::default());
            let decision = p.predictive_migration_decision(0, 1, &s, Some(cost));
            prop_assert!(
                !matches!(decision, MigrationDecision::MigrateTo(_)),
                "underwater request migrated: {decision:?}"
            );
        }
    }

    #[test]
    fn cross_shard_instance_ranks_healthy_and_respects_fit() {
        let p = SchedPolicy::pascal(PascalConfig::default());
        let s = vec![
            stats(0, true, 50, 3, 0, Some(100)),
            stats(1, false, 0, 0, 0, Some(100)), // unhealthy: excluded
            stats(2, true, 10, 1, 1, Some(100)),
        ];
        assert_eq!(p.cross_shard_instance(10, &s), Some(2));
        // Adaptive skips instances that cannot hold the KV right now…
        let full = vec![
            stats(0, true, 50, 3, 0, Some(100)),
            stats(2, true, 10, 1, 1, Some(5)),
        ];
        assert_eq!(p.cross_shard_instance(10, &full), Some(0));
        // …and gives up when nothing fits.
        let all_full = vec![stats(0, true, 0, 0, 0, Some(5))];
        assert_eq!(p.cross_shard_instance(10, &all_full), None);
        // NonAdaptive lands blindly on the best-ranked instance.
        let blind = SchedPolicy::pascal(PascalConfig {
            adaptive_migration: false,
            ..PascalConfig::default()
        });
        assert_eq!(blind.cross_shard_instance(10, &full), Some(2));
        // Baselines and NoMigration never accept cross-shard traffic.
        assert_eq!(SchedPolicy::Fcfs.cross_shard_instance(10, &s), None);
        let no_mig = SchedPolicy::pascal(PascalConfig {
            migration_enabled: false,
            ..PascalConfig::default()
        });
        assert_eq!(no_mig.cross_shard_instance(10, &s), None);
    }

    #[test]
    fn tie_break_is_first_instance() {
        let p = SchedPolicy::Fcfs;
        let s = vec![
            stats(3, true, 100, 0, 0, Some(1)),
            stats(1, true, 100, 0, 0, Some(1)),
        ];
        assert_eq!(p.place_new_request(&s), 3, "first minimum wins");
    }
}
