//! The cross-shard router: cluster-boundary placement over scheduling
//! domains.
//!
//! When the engine runs as a cluster of shards, every arrival is pinned to
//! one shard *before* the shard's own Algorithm 1 picks an instance — the
//! decision SLO-aware serving work identifies as dominating tail behavior,
//! made here from per-shard [`PoolSnapshot`]s. [`RouterPolicy`] names the
//! three routing disciplines:
//!
//! * `round-robin` — a rotating cursor, oblivious to load;
//! * `least-loaded` — the shard with the smallest current KV footprint;
//! * `predictive` — Algorithm 1's smallest-predicted-footprint ranking
//!   lifted to shard granularity: restrict to shards with at least one
//!   SLO-healthy instance (fall back to all when none qualify), then pick
//!   the smallest current-plus-predicted KV footprint.
//!
//! The router also owns the cross-shard *escape* ranking used at phase
//! boundaries: when a shard's every instance is SLO-unhealthy, Algorithm 2
//! is lifted one level and ranks the sibling shards instead.

use pascal_cluster::PoolSnapshot;

/// A named cross-shard routing discipline.
///
/// # Examples
///
/// ```
/// use pascal_sched::RouterPolicy;
///
/// let router = RouterPolicy::parse("least").unwrap();
/// assert_eq!(router, RouterPolicy::LeastLoaded);
/// assert_eq!(router.key(), "least");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RouterPolicy {
    /// Rotate arrivals across shards with a cursor.
    RoundRobin,
    /// Send each arrival to the shard with the smallest current KV
    /// footprint (GPU + CPU bytes), ties to the lowest shard id.
    LeastLoaded,
    /// Algorithm 1 lifted to shard granularity: prefer shards with an
    /// SLO-healthy instance, rank by current-plus-predicted KV footprint.
    /// Without a length predictor the predicted term is zero and this
    /// degenerates to health-filtered least-loaded.
    Predictive,
}

impl RouterPolicy {
    /// All disciplines, in presentation order.
    pub const ALL: [RouterPolicy; 3] = [
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastLoaded,
        RouterPolicy::Predictive,
    ];

    /// The short CLI/JSON key.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "rr",
            RouterPolicy::LeastLoaded => "least",
            RouterPolicy::Predictive => "predictive",
        }
    }

    /// Parses a CLI-style key.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid keys.
    pub fn parse(s: &str) -> Result<RouterPolicy, String> {
        RouterPolicy::ALL
            .into_iter()
            .find(|r| r.key() == s)
            .ok_or_else(|| {
                let keys: Vec<&str> = RouterPolicy::ALL.iter().map(|r| r.key()).collect();
                format!("unknown router '{s}' (valid: {})", keys.join(", "))
            })
    }

    /// Whether routing reads the per-shard monitor aggregates at all.
    /// `RoundRobin` is load-oblivious — the cluster skips the monitor
    /// sweep entirely and routes with [`RouterPolicy::rotate`].
    #[must_use]
    pub fn needs_pool_state(self) -> bool {
        !matches!(self, RouterPolicy::RoundRobin)
    }

    /// The pool-state-free rotation underlying `RoundRobin`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn rotate(shards: usize, cursor: &mut usize) -> usize {
        assert!(shards > 0, "routing requires at least one shard");
        let shard = *cursor % shards;
        *cursor += 1;
        shard
    }

    /// Picks the shard for a new arrival from the per-shard monitor
    /// aggregates. `cursor` is the router's rotation state; only
    /// `RoundRobin` reads or advances it.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty.
    #[must_use]
    pub fn route(self, pools: &[PoolSnapshot], cursor: &mut usize) -> usize {
        assert!(!pools.is_empty(), "routing requires at least one shard");
        match self {
            RouterPolicy::RoundRobin => RouterPolicy::rotate(pools.len(), cursor),
            RouterPolicy::LeastLoaded => min_shard_by(pools.iter().enumerate(), |p| p.kv_bytes),
            RouterPolicy::Predictive => {
                let healthy: Vec<(usize, &PoolSnapshot)> = pools
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.slo_healthy_instances > 0)
                    .collect();
                if healthy.is_empty() {
                    min_shard_by(pools.iter().enumerate(), |p| p.predicted_kv_bytes)
                } else {
                    min_shard_by(healthy, |p| p.predicted_kv_bytes)
                }
            }
        }
    }
}

impl std::fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// Algorithm 2 lifted to shard granularity: the escape target for a
/// request whose home shard has no SLO-healthy instance left. Among the
/// *other* shards that still have one, pick the fewest high-priority
/// reasoning requests, ties by predicted KV footprint, then shard id.
/// `None` when every sibling shard is as saturated as home — the request
/// stays, exactly as Algorithm 2 keeps a request home when migration
/// cannot help.
#[must_use]
pub fn cross_shard_escape_target(pools: &[PoolSnapshot], from: usize) -> Option<usize> {
    best_escape_pool(pools.iter().enumerate().filter(|(shard, _)| *shard != from))
}

/// Algorithm 2 lifted one level further, to *region* granularity: the
/// escape target for a request whose whole home region is saturated (no
/// sibling shard could take it). Ranks the other regions' aggregate pool
/// snapshots by the same key the cross-shard ranking uses — fewest
/// high-priority reasoning requests, ties by predicted KV footprint, then
/// region id. `None` when no remote region has an SLO-healthy instance:
/// paying the WAN toll to land in an equally saturated region helps nobody.
#[must_use]
pub fn cross_region_escape_target(pools: &[PoolSnapshot], from: usize) -> Option<usize> {
    best_escape_pool(
        pools
            .iter()
            .enumerate()
            .filter(|(region, _)| *region != from),
    )
}

/// The landing-side half of an escape: the best pool (shard) *within* an
/// already-chosen destination group — e.g. which shard of the destination
/// region receives a cross-region escape. Same ranking as the escape
/// targets, with no exclusion.
#[must_use]
pub fn best_escape_shard(pools: &[PoolSnapshot]) -> Option<usize> {
    best_escape_pool(pools.iter().enumerate())
}

/// Shared escape ranking: among the SLO-healthy candidates, fewest
/// high-priority reasoning requests, ties by predicted KV footprint, then
/// index.
fn best_escape_pool<'a>(
    candidates: impl IntoIterator<Item = (usize, &'a PoolSnapshot)>,
) -> Option<usize> {
    let healthy: Vec<(usize, &PoolSnapshot)> = candidates
        .into_iter()
        .filter(|(_, p)| p.slo_healthy_instances > 0)
        .collect();
    if healthy.is_empty() {
        return None;
    }
    Some(min_shard_by(healthy, |p| {
        (u64::from(p.reasoning_count), p.predicted_kv_bytes)
    }))
}

/// First minimum by key in iteration order — deterministic shard-id
/// tie-breaking, mirroring the instance-level `min_by_key_stable`.
fn min_shard_by<'a, I, K>(iter: I, key: impl Fn(&PoolSnapshot) -> K) -> usize
where
    I: IntoIterator<Item = (usize, &'a PoolSnapshot)>,
    K: Ord,
{
    let mut best: Option<(usize, K)> = None;
    for (shard, p) in iter {
        let k = key(p);
        match &best {
            Some((_, bk)) if *bk <= k => {}
            _ => best = Some((shard, k)),
        }
    }
    best.expect("non-empty shard iterator").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(healthy: usize, kv: u64, predicted_extra: u64, reasoning: u32) -> PoolSnapshot {
        PoolSnapshot {
            instances: 2,
            slo_healthy_instances: healthy,
            kv_bytes: kv,
            predicted_kv_bytes: kv + predicted_extra,
            free_gpu_blocks: Some(100),
            reasoning_count: reasoning,
        }
    }

    #[test]
    fn keys_round_trip_and_errors_list_valid_values() {
        for r in RouterPolicy::ALL {
            assert_eq!(RouterPolicy::parse(r.key()), Ok(r));
        }
        let err = RouterPolicy::parse("hash").expect_err("unknown router");
        assert!(
            err.contains("valid: rr, least, predictive"),
            "error must list the valid values, got: {err}"
        );
    }

    #[test]
    fn round_robin_rotates_with_the_cursor() {
        let pools = vec![pool(2, 0, 0, 0), pool(2, 0, 0, 0), pool(2, 0, 0, 0)];
        let mut cursor = 0;
        let picks: Vec<usize> = (0..5)
            .map(|_| RouterPolicy::RoundRobin.route(&pools, &mut cursor))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
        assert_eq!(cursor, 5);
    }

    #[test]
    fn least_loaded_picks_smallest_current_footprint() {
        let pools = vec![pool(2, 500, 0, 0), pool(0, 100, 900, 0), pool(2, 300, 0, 0)];
        let mut cursor = 7;
        // Least-loaded ignores health and predictions entirely.
        assert_eq!(RouterPolicy::LeastLoaded.route(&pools, &mut cursor), 1);
        assert_eq!(cursor, 7, "cursor untouched by non-rotating routers");
    }

    #[test]
    fn predictive_filters_by_health_then_predicted_footprint() {
        let pools = vec![
            pool(2, 500, 0, 0),   // healthy, predicted 500
            pool(0, 100, 0, 0),   // unhealthy: excluded despite smallest kv
            pool(2, 300, 300, 0), // healthy, predicted 600
        ];
        let mut cursor = 0;
        assert_eq!(RouterPolicy::Predictive.route(&pools, &mut cursor), 0);
        // With every shard unhealthy, fall back to all.
        let saturated = vec![pool(0, 500, 0, 0), pool(0, 100, 0, 0)];
        assert_eq!(RouterPolicy::Predictive.route(&saturated, &mut cursor), 1);
    }

    #[test]
    fn tie_break_is_lowest_shard_id() {
        let pools = vec![pool(1, 100, 0, 0), pool(1, 100, 0, 0)];
        let mut cursor = 0;
        assert_eq!(RouterPolicy::LeastLoaded.route(&pools, &mut cursor), 0);
        assert_eq!(RouterPolicy::Predictive.route(&pools, &mut cursor), 0);
    }

    #[test]
    fn escape_target_prefers_least_reasoning_among_healthy_siblings() {
        let pools = vec![
            pool(0, 0, 0, 9), // home: saturated
            pool(2, 800, 0, 3),
            pool(2, 100, 0, 5),
            pool(0, 0, 0, 0), // unhealthy sibling: excluded
        ];
        assert_eq!(cross_shard_escape_target(&pools, 0), Some(1));
        // Ties on reasoning count fall through to predicted footprint.
        let tied = vec![pool(0, 0, 0, 9), pool(1, 800, 0, 3), pool(1, 100, 0, 3)];
        assert_eq!(cross_shard_escape_target(&tied, 0), Some(2));
    }

    #[test]
    fn region_escape_target_mirrors_the_shard_ranking_one_level_up() {
        // Region-granularity Algorithm 2: fewest reasoning requests among
        // healthy remote regions, ties by predicted footprint, then id.
        let regions = vec![
            pool(0, 0, 0, 9), // home: saturated
            pool(4, 900, 0, 5),
            pool(4, 100, 0, 2),
            pool(0, 0, 0, 0), // unhealthy remote: excluded
        ];
        assert_eq!(cross_region_escape_target(&regions, 0), Some(2));
        let saturated = vec![pool(0, 0, 0, 1), pool(0, 0, 0, 1)];
        assert_eq!(cross_region_escape_target(&saturated, 0), None);
        // The home region never qualifies as its own escape.
        let only_home = vec![pool(2, 0, 0, 1), pool(0, 0, 0, 1)];
        assert_eq!(cross_region_escape_target(&only_home, 0), None);
    }

    #[test]
    fn best_escape_shard_ranks_without_exclusion() {
        let pools = vec![pool(1, 500, 0, 4), pool(1, 100, 0, 2), pool(0, 0, 0, 0)];
        assert_eq!(best_escape_shard(&pools), Some(1));
        assert_eq!(best_escape_shard(&[pool(0, 0, 0, 0)]), None);
        assert_eq!(best_escape_shard(&[]), None);
    }

    #[test]
    fn escape_returns_none_when_no_sibling_is_healthy() {
        let pools = vec![pool(0, 0, 0, 1), pool(0, 0, 0, 1)];
        assert_eq!(cross_shard_escape_target(&pools, 0), None);
        // The home shard itself never qualifies as its own escape.
        let only_home_healthy = vec![pool(2, 0, 0, 1), pool(0, 0, 0, 1)];
        assert_eq!(cross_shard_escape_target(&only_home_healthy, 0), None);
    }
}
