//! # pascal-sched — scheduling policies for reasoning-LLM serving
//!
//! The paper's contribution and its baselines behind one interface:
//!
//! * [`SchedPolicy::Fcfs`] — vLLM's default first-come-first-served policy
//!   with head-of-line blocking and most-recent preemption (§II-C);
//! * [`SchedPolicy::RoundRobin`] — preemptive time-sharing with a fixed
//!   token quantum (§II-C, quantum 500 in §V-A);
//! * [`SchedPolicy::Pascal`] — the phase-aware hierarchical scheduler
//!   (§IV): high/low priority queues with per-queue round-robin,
//!   conditional demotion of oversized reasoning requests, Algorithm 1
//!   placement, Algorithm 2 migration and the Fig. 7 adaptive override.
//!   The Fig. 13 / Fig. 15 ablations are configuration flags on
//!   [`PascalConfig`].
//!
//! Above the per-shard policies sits the cluster boundary:
//! [`RouterPolicy`] pins every arrival to one scheduling domain (shard)
//! before the shard's Algorithm 1 runs, and
//! [`cross_shard_escape_target`] lifts Algorithm 2 to shard granularity
//! for requests whose home shard has saturated.
//!
//! # Examples
//!
//! ```
//! use pascal_cluster::InstanceStats;
//! use pascal_sched::{PascalConfig, SchedPolicy};
//!
//! let policy = SchedPolicy::pascal(PascalConfig::default());
//! let stats = vec![
//!     InstanceStats {
//!         instance: 0,
//!         slo_ok: true,
//!         kv_footprint_bytes: 900,
//!         reasoning_count: 3,
//!         fresh_answering_count: 0,
//!         gpu_free_blocks: Some(10),
//!         predicted_future_kv_bytes: 0,
//!     },
//!     InstanceStats {
//!         instance: 1,
//!         slo_ok: true,
//!         kv_footprint_bytes: 100,
//!         reasoning_count: 7,
//!         fresh_answering_count: 2,
//!         gpu_free_blocks: Some(10),
//!         predicted_future_kv_bytes: 0,
//!     },
//! ];
//! // Algorithm 1: new reasoning work goes to the smallest KV footprint.
//! assert_eq!(policy.place_new_request(&stats), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod policy;
mod router;
mod spec;

pub use policy::{MigrationCost, MigrationDecision, PascalConfig, PriorityKey, SchedPolicy};
pub use router::{
    best_escape_shard, cross_region_escape_target, cross_shard_escape_target, RouterPolicy,
};
pub use spec::PolicyKind;
