//! Declarative policy selection.
//!
//! [`PolicyKind`] is the copyable, parseable key the CLI and the scenario
//! sweep use to name a scheduler before building the concrete
//! [`SchedPolicy`]. Keeping the key separate from the policy keeps sweep
//! cells serializable: a JSON row stores `"pascal-nomigration"`, not a
//! config struct.

use crate::policy::{PascalConfig, SchedPolicy};

/// A named scheduler variant.
///
/// # Examples
///
/// ```
/// use pascal_sched::PolicyKind;
///
/// let kind = PolicyKind::parse("pascal").unwrap();
/// assert_eq!(kind.build().name(), "PASCAL");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// vLLM's default first-come-first-served baseline.
    Fcfs,
    /// Preemptive round-robin at the paper's 500-token quantum.
    RoundRobin,
    /// The full phase-aware scheduler (§IV).
    Pascal,
    /// PASCAL with phase-boundary migration disabled (Fig. 13).
    PascalNoMigration,
    /// PASCAL with the adaptive override disabled (Fig. 15).
    PascalNonAdaptive,
}

impl PolicyKind {
    /// All variants, in presentation order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Fcfs,
        PolicyKind::RoundRobin,
        PolicyKind::Pascal,
        PolicyKind::PascalNoMigration,
        PolicyKind::PascalNonAdaptive,
    ];

    /// The three schedulers of the main evaluation (§V-A).
    pub const MAIN: [PolicyKind; 3] =
        [PolicyKind::Fcfs, PolicyKind::RoundRobin, PolicyKind::Pascal];

    /// The short CLI/JSON key.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::RoundRobin => "rr",
            PolicyKind::Pascal => "pascal",
            PolicyKind::PascalNoMigration => "pascal-nomigration",
            PolicyKind::PascalNonAdaptive => "pascal-nonadaptive",
        }
    }

    /// Builds the concrete policy this key names.
    #[must_use]
    pub fn build(self) -> SchedPolicy {
        match self {
            PolicyKind::Fcfs => SchedPolicy::Fcfs,
            PolicyKind::RoundRobin => SchedPolicy::round_robin_default(),
            PolicyKind::Pascal => SchedPolicy::pascal(PascalConfig::default()),
            PolicyKind::PascalNoMigration => SchedPolicy::pascal(PascalConfig {
                migration_enabled: false,
                ..PascalConfig::default()
            }),
            PolicyKind::PascalNonAdaptive => SchedPolicy::pascal(PascalConfig {
                adaptive_migration: false,
                ..PascalConfig::default()
            }),
        }
    }

    /// Parses a CLI-style key.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid keys.
    pub fn parse(s: &str) -> Result<PolicyKind, String> {
        PolicyKind::ALL
            .into_iter()
            .find(|k| k.key() == s)
            .ok_or_else(|| {
                let keys: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.key()).collect();
                format!("unknown policy '{s}' (valid: {})", keys.join(", "))
            })
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip_through_parse() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.key()), Ok(kind));
        }
        let err = PolicyKind::parse("sjf").expect_err("unknown policy");
        assert!(
            err.contains("pascal-nomigration"),
            "error lists keys: {err}"
        );
    }

    #[test]
    fn built_policies_carry_the_expected_names() {
        let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.build().name()).collect();
        assert_eq!(
            names,
            vec![
                "FCFS",
                "RR",
                "PASCAL",
                "PASCAL(NoMigration)",
                "PASCAL(NonAdaptive)"
            ]
        );
    }
}
