//! Problem-solving workloads: where phase-aware scheduling matters less.
//!
//! MATH-500 / GPQA / LiveCodeBench requests reason for thousands of hidden
//! tokens but answer briefly (Fig. 14), so answering-phase contention is
//! minimal and PASCAL's edge over RR shrinks (§V-D / Fig. 16). This example
//! serves the mixed trace and prints the comparison.
//!
//! Run with: `cargo run --release --example problem_solving`

use pascal::core::experiments::common::{evaluation_trace, main_policies, run_cluster};
use pascal::core::RateLevel;
use pascal::metrics::{slo_violation_rate, LatencySummary, QoeParams, SLO_QOE_THRESHOLD};
use pascal::sim::SimRng;
use pascal::workload::DatasetMix;

fn main() {
    let mix = DatasetMix::arena_with_reasoning_heavy();

    // Show what "reasoning-heavy" means in token terms.
    let mut rng = SimRng::seed_from(3);
    println!("sampled requests from the Fig. 16 mixture:");
    for _ in 0..6 {
        let profile = mix.sample_profile(&mut rng);
        let reasoning = profile.reasoning.sample(&mut rng);
        let answering = profile.answering.sample(&mut rng);
        println!(
            "  {:<14} reasoning {:>6} tokens -> answering {:>5} tokens",
            profile.name, reasoning, answering
        );
    }
    println!();

    let trace = evaluation_trace(&mix, RateLevel::High, 1200, 11);
    for policy in main_policies() {
        let out = run_cluster(&trace, policy);
        let ttft = LatencySummary::from_values(
            out.records
                .iter()
                .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
        )
        .expect("non-empty trace");
        let ttfat: Vec<f64> = out
            .records
            .iter()
            .filter_map(|r| r.ttfat().map(|d| d.as_secs_f64()))
            .collect();
        let mean_ttfat = ttfat.iter().sum::<f64>() / ttfat.len() as f64;
        let violations =
            slo_violation_rate(&out.records, &QoeParams::paper_eval(), SLO_QOE_THRESHOLD);
        println!(
            "{:<8} TTFT mean {:>6.1}s p99 {:>6.1}s | TTFAT mean {:>6.3}s | SLO violations {:>5.2}%",
            out.policy_name,
            ttft.mean,
            ttft.p99,
            mean_ttfat,
            violations * 100.0
        );
    }
    println!(
        "\nWith short answers, RR's implicit hierarchy already favours reasoning, so the\n\
         FCFS gap stays large while the PASCAL-RR gap narrows — the §V-D observation."
    );
}
