//! Chat serving: the paper's headline scenario.
//!
//! An AlpacaEval2.0-like chat trace hits the eight-instance cluster at the
//! saturating arrival rate; FCFS, RR and PASCAL serve the identical trace
//! and we compare TTFT (what the user waits before the answer starts
//! streaming) and answering-phase SLO violations.
//!
//! Run with: `cargo run --release --example chat_serving`

use pascal::core::experiments::common::{evaluation_trace, main_policies, run_cluster};
use pascal::core::RateLevel;
use pascal::metrics::{
    slo_violation_rate, tail_by_token_bins, LatencySummary, QoeParams, SLO_QOE_THRESHOLD,
};
use pascal::workload::{DatasetMix, DatasetProfile};

fn main() {
    let mix = DatasetMix::single(DatasetProfile::alpaca_eval2());
    let trace = evaluation_trace(&mix, RateLevel::High, 1500, 7);
    println!(
        "serving {} chat requests ({} total output tokens) on 8 instances at the high rate\n",
        trace.requests().len(),
        trace.total_output_tokens()
    );

    for policy in main_policies() {
        let out = run_cluster(&trace, policy);
        let points: Vec<(u32, f64)> = out
            .records
            .iter()
            .filter_map(|r| r.ttft().map(|t| (r.spec.reasoning_tokens, t.as_secs_f64())))
            .collect();
        let ttft =
            LatencySummary::from_values(points.iter().map(|(_, t)| *t)).expect("non-empty trace");
        let violations =
            slo_violation_rate(&out.records, &QoeParams::paper_eval(), SLO_QOE_THRESHOLD);
        println!(
            "{:<8} TTFT mean {:>6.1}s  p50 {:>6.1}s  p99 {:>6.1}s | SLO violations {:>5.2}% | migrations {}",
            out.policy_name,
            ttft.mean,
            ttft.p50,
            ttft.p99,
            violations * 100.0,
            out.migrations().count()
        );

        // Tail TTFT of the short-reasoning requests the paper highlights.
        let bins = tail_by_token_bins(points.into_iter().filter(|(k, _)| *k < 1024), 256);
        let short_tail = bins.iter().map(|b| b.value).fold(0.0f64, f64::max);
        println!("         worst short-reasoning tail bin: {short_tail:.1}s");
    }
    println!(
        "\nPASCAL keeps short-reasoning tail TTFT near the RR level while beating both\n\
         baselines at the p99 — the Fig. 9/10 result."
    );
}
