//! Capacity planning: how much load can each scheduler absorb?
//!
//! Sweeps the arrival rate from 60% to 120% of the analytic cluster
//! capacity and reports, per scheduler, the p99 TTFT and the SLO violation
//! rate — the operating curve an operator would use to pick a deployment
//! point (an extension beyond the paper's fixed three rates).
//!
//! Run with: `cargo run --release --example capacity_planning`

use pascal::core::experiments::common::{main_policies, run_cluster};
use pascal::core::{estimate_capacity_rps, SimConfig};
use pascal::metrics::{percentile, slo_violation_rate, QoeParams, SLO_QOE_THRESHOLD};
use pascal::sched::SchedPolicy;
use pascal::workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};

fn main() {
    let mix = DatasetMix::single(DatasetProfile::arena_hard());
    let reference = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
    let capacity = estimate_capacity_rps(&reference, &mix);
    println!("analytic cluster capacity for Arena-Hard: {capacity:.1} req/s\n");
    println!(
        "{:<6} {:<8} {:>12} {:>14}",
        "load", "policy", "p99_ttft_s", "slo_violation"
    );

    for pct_load in [60u32, 80, 100, 120] {
        let rate = capacity * f64::from(pct_load) / 100.0;
        let trace = TraceBuilder::new(mix.clone())
            .arrivals(ArrivalProcess::poisson(rate))
            .count(1200)
            .seed(13)
            .build();
        for policy in main_policies() {
            let out = run_cluster(&trace, policy);
            let mut ttfts: Vec<f64> = out
                .records
                .iter()
                .filter_map(|r| r.ttft().map(|d| d.as_secs_f64()))
                .collect();
            ttfts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let violations =
                slo_violation_rate(&out.records, &QoeParams::paper_eval(), SLO_QOE_THRESHOLD);
            println!(
                "{:<6} {:<8} {:>12.1} {:>13.2}%",
                format!("{pct_load}%"),
                out.policy_name,
                percentile(&ttfts, 99.0),
                violations * 100.0
            );
        }
        println!();
    }
    println!(
        "Reading the curve: the highest load where p99 TTFT and violations stay\n\
         acceptable is the deployable capacity — PASCAL extends it vs the baselines."
    );
}
