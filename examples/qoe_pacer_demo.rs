//! The Fig. 3 walkthrough: how the token pacer and the QoE metric interact.
//!
//! A scripted answering stream generates tokens faster than the user reads,
//! pauses (preemption), and resumes. The pacer buffers the burst; QoE drops
//! only once the buffer runs dry and the user starves.
//!
//! Run with: `cargo run --release --example qoe_pacer_demo`

use pascal::cluster::TokenPacer;
use pascal::metrics::qoe_of_stream;
use pascal::sim::{SimDuration, SimTime};

fn main() {
    let tpot = SimDuration::from_millis(100); // the user reads 10 tokens/s
    let secs = SimTime::from_secs_f64;

    // Phase (i): 12 tokens generated at 40 ms — faster than the reading pace.
    // Phase (ii)+(iii): the serving system pauses for 2.5 s.
    // Phase (iv): generation resumes on pace.
    let mut times = Vec::new();
    for i in 0..12 {
        times.push(secs(0.04 * f64::from(i)));
    }
    let pause_end = 0.44 + 2.5;
    for i in 0..10 {
        times.push(secs(pause_end + 0.1 * f64::from(i)));
    }

    let mut pacer = TokenPacer::new(tpot);
    println!("t(s)    generated  expected  buffer   state");
    let mut next = 0usize;
    let mut probe = 0.0f64;
    while probe <= pause_end + 1.0 {
        while next < times.len() && times[next].as_secs_f64() <= probe {
            pacer.on_token(times[next]);
            next += 1;
        }
        let at = secs(probe);
        let balance = pacer.buffer_balance(at);
        let state = if balance >= 0 {
            "smooth"
        } else {
            "STARVED (Fig. 3(iii))"
        };
        println!(
            "{probe:>5.2}   {:>9}  {:>8}  {:>6}   {state}",
            pacer.generated(),
            pacer.expected_by(at),
            balance,
        );
        probe += 0.4;
    }

    let qoe = qoe_of_stream(&times, times[0], tpot);
    println!("\nQoE of the full stream: {qoe:.3} (1.0 = never starved)");

    // The same stream without the pause scores a perfect 1.0.
    let smooth: Vec<SimTime> = (0..22).map(|i| secs(0.1 * f64::from(i))).collect();
    println!(
        "QoE without the pause:  {:.3}",
        qoe_of_stream(&smooth, smooth[0], tpot)
    );
}
