//! Quickstart: the Fig. 2 walkthrough, for real.
//!
//! Three requests (A, B, C) arrive one decode-step apart on a single
//! instance whose KV memory holds only two of them at a time. Under FCFS,
//! request C suffers head-of-line blocking; under round-robin it is admitted
//! after A exhausts its token quantum; the oracle admits everyone at once.
//!
//! Run with: `cargo run --release --example quickstart`

use pascal::core::{run_simulation, KvCapacityMode, SimConfig};
use pascal::sched::SchedPolicy;
use pascal::sim::SimTime;
use pascal::workload::{RequestId, RequestSpec, Trace};

fn main() {
    // One decode step of the 32B model on an H100 is ~30 ms; use it as the
    // "time unit" of Fig. 2.
    let step = 0.035;

    // A and B generate 8 tokens, C generates 7 (4 reasoning + the rest
    // answering). Prompts are one KV block (16 tokens) each.
    let mk = |id: u64, arrive_steps: f64, reasoning: u32, answering: u32| {
        RequestSpec::new(
            RequestId(id),
            SimTime::from_secs_f64(arrive_steps * step),
            16,
            reasoning,
            answering,
        )
    };
    let trace = Trace::from_requests(vec![
        mk(0, 0.0, 4, 4), // A
        mk(1, 1.0, 4, 4), // B
        mk(2, 2.0, 4, 3), // C
    ]);

    // KV memory for exactly two in-flight requests: each needs
    // ceil((16 prompt + 8 output + 1) / 16) = 2 blocks of 16 tokens.
    let geometry =
        SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited).geometry();
    let two_requests = 4 * geometry.block_bytes();

    println!("Fig. 2 walkthrough: A/B/C on one instance, memory for two requests\n");
    for (label, policy, capacity) in [
        (
            "(a) oracle (infinite memory)",
            SchedPolicy::Fcfs,
            KvCapacityMode::Unlimited,
        ),
        (
            "(b) FCFS",
            SchedPolicy::Fcfs,
            KvCapacityMode::Bytes(two_requests),
        ),
        (
            "(c) round-robin, quantum 4",
            SchedPolicy::RoundRobin { quantum: 4 },
            KvCapacityMode::Bytes(two_requests),
        ),
    ] {
        let config = SimConfig::characterization(policy, capacity);
        let out = run_simulation(&trace, &config);
        println!("{label}:");
        for record in &out.records {
            let name = ["A", "B", "C"][record.spec.id.0 as usize];
            let first = record.token_times[0];
            let steps_to_first = (first.saturating_since(record.spec.arrival)).as_secs_f64() / step;
            let steps_to_done =
                (record.completion.saturating_since(record.spec.arrival)).as_secs_f64() / step;
            println!(
                "  request {name}: first token after {steps_to_first:>4.1} steps, \
                 done after {steps_to_done:>4.1} steps, preemptions: {}",
                record.num_preemptions
            );
        }
        println!();
    }
    println!(
        "FCFS makes C wait for A to finish (head-of-line blocking); RR preempts A after\n\
         its 4-token quantum so C starts within a few steps — exactly Fig. 2(b) vs (c)."
    );
}
