//! Latency anatomy end to end: the blame decomposition reconstructed from
//! a trace must sum *exactly* to the latencies the engine measured — per
//! request, in integer nanoseconds, across topologies, policies and fleet
//! chaos — and the `analyze` subcommand must be byte-deterministic across
//! executor thread counts. SLO burn-rate alerting is exercised the same
//! way the paper would: an injected outage fires an alert, a quiet
//! baseline stays silent, and attaching the tracker changes nothing else.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::{Command, Output};

use pascal::core::experiments::common::{evaluation_trace, main_policies};
use pascal::core::{run_simulation, FederationPolicy, FleetPreset, RateLevel, SimConfig};
use pascal::sched::{RouterPolicy, SchedPolicy};
use pascal::telemetry::{reconstruct, AnatomyOutcome, SloAlertPreset, TelemetryConfig};
use pascal::workload::DatasetMix;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pascal-anatomy-{}-{name}", std::process::id()))
}

fn cli(args: &[&str]) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_pascal-cli"))
        .args(args)
        .output()
        .expect("pascal-cli binary runs");
    assert!(
        out.status.success(),
        "{args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Runs one traced cell and cross-checks every reconstructed timeline
/// against the engine's own `RequestRecord` measurements.
fn assert_blame_conserves(config: &SimConfig, label: &str) {
    let trace = evaluation_trace(
        &DatasetMix::arena_with_reasoning_heavy(),
        RateLevel::High,
        120,
        17,
    );
    let mut config = config.clone();
    config.telemetry = TelemetryConfig {
        trace: true,
        ..TelemetryConfig::default()
    };
    let out = run_simulation(&trace, &config);
    let events = out.telemetry.expect("trace enabled").events;
    let report = reconstruct(&events);

    assert_eq!(
        report.unterminated, 0,
        "{label}: full runs leave no partials"
    );
    assert_eq!(
        report.rejected,
        out.rejections.len() as u64,
        "{label}: rejected tally"
    );

    let records: HashMap<u64, _> = out.records.iter().map(|r| (r.spec.id.0, r)).collect();
    let mut completed = 0usize;
    for req in &report.requests {
        // Conservation is the contract: the additive components partition
        // the measured interval with zero rounding slack.
        assert_eq!(
            req.e2e.total_ns(),
            req.e2e_ns(),
            "{label} #{}: e2e blame must sum to the timeline span",
            req.request
        );
        match req.outcome {
            AnatomyOutcome::Stranded => {
                assert!(
                    !records.contains_key(&req.request),
                    "{label} #{}: stranded requests have no completion record",
                    req.request
                );
                continue;
            }
            AnatomyOutcome::Completed => completed += 1,
        }
        let record = records
            .get(&req.request)
            .unwrap_or_else(|| panic!("{label} #{}: record missing", req.request));
        assert_eq!(
            req.e2e.total_ns(),
            record.e2e_latency().as_nanos(),
            "{label} #{}: e2e blame vs measured e2e",
            req.request
        );
        match (&req.ttft, record.ttft()) {
            (Some(blame), Some(measured)) => assert_eq!(
                blame.total_ns(),
                measured.as_nanos(),
                "{label} #{}: ttft blame vs measured ttft",
                req.request
            ),
            (None, None) => {}
            (anatomy, record) => panic!(
                "{label} #{}: ttft presence disagrees (anatomy {anatomy:?}, record {record:?})",
                req.request
            ),
        }
    }
    assert_eq!(
        completed,
        out.records.len(),
        "{label}: every completion has a timeline"
    );
}

#[test]
fn blame_sums_to_measured_latencies_across_topology_policy_and_chaos() {
    let pascal = main_policies().pop().expect("main policies non-empty");
    for policy in [SchedPolicy::Fcfs, pascal] {
        let topologies = [
            ("pool", SimConfig::evaluation_cluster(policy)),
            (
                "sharded",
                SimConfig::evaluation_cluster(policy).with_shards(2, RouterPolicy::LeastLoaded),
            ),
            (
                "federated",
                SimConfig::evaluation_cluster(policy)
                    .with_shards(2, RouterPolicy::LeastLoaded)
                    .with_regions(2, FederationPolicy::Nearest),
            ),
        ];
        for (topo, base) in topologies {
            for preset in [None, Some(FleetPreset::Outage)] {
                let mut config = base.clone();
                if let Some(p) = preset {
                    // The outage preset needs the trace horizon; ~120
                    // high-rate requests land inside 60 s.
                    config.fleet =
                        Some(p.spec(60.0, config.regions, config.shards, config.num_instances));
                }
                let label = format!(
                    "{}/{topo}/{}",
                    policy.name(),
                    preset.map_or("static", FleetPreset::key)
                );
                assert_blame_conserves(&config, &label);
            }
        }
    }
}

#[test]
fn analyze_output_is_byte_identical_across_run_threads() {
    let mut traces = Vec::new();
    for threads in ["1", "4"] {
        let trace = tmp(&format!("threads{threads}.jsonl"));
        cli(&[
            "run",
            "--count",
            "150",
            "--instances",
            "4",
            "--shards",
            "2",
            "--regions",
            "2",
            "--rate",
            "high",
            "--seed",
            "7",
            "--run-threads",
            threads,
            "--trace-out",
            trace.to_str().expect("utf8 path"),
        ]);
        traces.push(trace);
    }
    for format in ["json", "csv", "waterfall"] {
        let outputs: Vec<Vec<u8>> = traces
            .iter()
            .map(|t| {
                cli(&[
                    "analyze",
                    "--trace",
                    t.to_str().expect("utf8 path"),
                    "--format",
                    format,
                ])
                .stdout
            })
            .collect();
        assert_eq!(
            outputs[0], outputs[1],
            "analyze --format {format} must not depend on --run-threads"
        );
        assert!(!outputs[0].is_empty(), "analyze --format {format} output");
    }
    for trace in traces {
        let _ = std::fs::remove_file(trace);
    }
}

/// The acceptance scenario: same overloaded cell, alerting on, with and
/// without the injected outage. The outage must burn through the error
/// budget and page; the quiet baseline must not.
#[test]
fn outage_fires_a_burn_rate_alert_and_the_quiet_baseline_stays_silent() {
    let base = [
        "run",
        "--count",
        "600",
        "--instances",
        "2",
        "--policy",
        "rr",
        "--rate",
        "8",
        "--seed",
        "3",
        "--alerts",
        "paging",
    ];
    let quiet = cli(&base);
    let stderr = String::from_utf8_lossy(&quiet.stderr);
    assert!(
        stderr.contains("slo alerts: none fired"),
        "quiet baseline must not page:\n{stderr}"
    );

    let mut with_outage: Vec<&str> = base.to_vec();
    with_outage.extend_from_slice(&["--fleet-events", "outage"]);
    let paged = cli(&with_outage);
    let stderr = String::from_utf8_lossy(&paged.stderr);
    let fired: u64 = stderr
        .lines()
        .find_map(|l| l.strip_prefix("slo alerts: "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no alert summary on stderr:\n{stderr}"));
    assert!(fired >= 1, "outage must fire at least one alert:\n{stderr}");
    assert!(
        stderr.contains("rule"),
        "fired alerts name their rule:\n{stderr}"
    );
}

#[test]
fn alert_tracker_has_zero_observer_effect_on_records() {
    let trace = evaluation_trace(
        &DatasetMix::arena_with_reasoning_heavy(),
        RateLevel::High,
        150,
        9,
    );
    let policy = main_policies().pop().expect("main policies non-empty");
    let plain = SimConfig::evaluation_cluster(policy);
    let alerting = plain.clone().with_alerts(SloAlertPreset::Paging.spec(60.0));

    let off = run_simulation(&trace, &plain);
    let on = run_simulation(&trace, &alerting);
    assert_eq!(off.records, on.records, "records must be byte-identical");
    assert_eq!(off.makespan, on.makespan);
    assert!(off.alerts.is_empty(), "alerting off: no alert records");
}
