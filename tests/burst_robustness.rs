//! Robustness extension: flash-crowd (ON/OFF bursty) traffic at the same
//! average rate as a smooth Poisson stream. Bursts concentrate arrivals,
//! so tails degrade for every scheduler — and the phase-aware scheduler's
//! advantage over FCFS must survive the bursts.

use pascal::core::experiments::common::{main_policies, run_cluster};
use pascal::core::{estimate_capacity_rps, SimConfig};
use pascal::metrics::{percentile, LatencySummary};
use pascal::sched::SchedPolicy;
use pascal::workload::{ArrivalProcess, DatasetMix, DatasetProfile, Trace, TraceBuilder};

fn trace(arrivals: ArrivalProcess, seed: u64) -> Trace {
    TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
        .arrivals(arrivals)
        .count(1200)
        .seed(seed)
        .build()
}

fn p99_ttft(out: &pascal::core::SimOutput) -> f64 {
    let mut xs: Vec<f64> = out
        .records
        .iter()
        .filter_map(|r| r.ttft().map(|d| d.as_secs_f64()))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    percentile(&xs, 99.0)
}

#[test]
fn bursty_traffic_is_served_completely_by_every_policy() {
    let reference = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
    let mix = DatasetMix::single(DatasetProfile::alpaca_eval2());
    let rate = 0.8 * estimate_capacity_rps(&reference, &mix);
    let bursty = trace(ArrivalProcess::bursty(rate, 4.0, 8.0), 3);
    for policy in main_policies() {
        let out = run_cluster(&bursty, policy);
        assert_eq!(out.records.len(), 1200, "{} lost requests", policy.name());
        for r in &out.records {
            r.assert_consistent();
        }
    }
}

#[test]
fn bursts_inflate_tails_relative_to_smooth_traffic() {
    let reference = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
    let mix = DatasetMix::single(DatasetProfile::alpaca_eval2());
    let rate = 0.8 * estimate_capacity_rps(&reference, &mix);

    let smooth = run_cluster(&trace(ArrivalProcess::poisson(rate), 4), SchedPolicy::Fcfs);
    let bursty = run_cluster(
        &trace(ArrivalProcess::bursty(rate, 4.0, 8.0), 4),
        SchedPolicy::Fcfs,
    );
    let (smooth_p99, bursty_p99) = (p99_ttft(&smooth), p99_ttft(&bursty));
    assert!(
        bursty_p99 > smooth_p99,
        "flash crowds should hurt the tail: bursty {bursty_p99:.1}s vs smooth {smooth_p99:.1}s"
    );
}

#[test]
fn pascal_still_beats_fcfs_mean_ttft_under_bursts() {
    let reference = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
    let mix = DatasetMix::single(DatasetProfile::alpaca_eval2());
    let rate = 0.9 * estimate_capacity_rps(&reference, &mix);
    let bursty = trace(ArrivalProcess::bursty(rate, 4.0, 8.0), 5);

    let mean = |policy| {
        let out = run_cluster(&bursty, policy);
        LatencySummary::from_values(
            out.records
                .iter()
                .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
        )
        .expect("non-empty")
        .mean
    };
    let policies = main_policies();
    let (fcfs, pascal) = (mean(policies[0]), mean(policies[2]));
    assert!(
        pascal < fcfs,
        "PASCAL mean TTFT {pascal:.1}s should beat FCFS {fcfs:.1}s under bursts"
    );
}
