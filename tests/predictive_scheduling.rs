//! End-to-end checks of the prediction subsystem through the facade: the
//! predictor learns online from engine completions, speculative demotion
//! flags the right requests, and predictive placement conserves work.

use pascal::core::experiments::predictive::{reasoning_heavy_mix, run_variant};
use pascal::core::{run_simulation, SimConfig};
use pascal::predict::{LengthPredictor, PredictorKind, ProfileEma};
use pascal::sched::{PascalConfig, SchedPolicy};
use pascal::sim::SimTime;
use pascal::workload::{
    ArrivalProcess, DatasetMix, DatasetProfile, RequestId, RequestSpec, Trace, TraceBuilder,
};

fn trace(count: usize, seed: u64) -> Trace {
    TraceBuilder::new(reasoning_heavy_mix())
        .arrivals(ArrivalProcess::poisson(6.0))
        .count(count)
        .seed(seed)
        .build()
}

#[test]
fn all_predictive_variants_serve_every_request() {
    let trace = trace(120, 3);
    for kind in PredictorKind::ALL {
        let out = run_variant(&trace, Some(kind));
        assert_eq!(out.records.len(), 120, "{kind}: lost requests");
        assert_eq!(out.predictions.len(), 120, "{kind}: lost samples");
        for r in &out.records {
            r.assert_consistent();
        }
    }
}

#[test]
fn engine_feedback_trains_the_ema_like_direct_observation() {
    // Running the engine must feed the predictor exactly the completions:
    // replaying observe() over the trace in completion order gives the same
    // estimates the engine-internal predictor acted on. We verify through
    // the calibration samples of a *second* run whose first prediction uses
    // everything the first run observed... simpler: after one engine run,
    // the per-dataset sample coverage matches the EMA warmup rule.
    let trace = trace(200, 8);
    let out = run_variant(&trace, Some(PredictorKind::ProfileEma));
    // Early arrivals of each dataset are uncovered (cold start), later ones
    // covered; overall coverage must be high but not total.
    let covered = out
        .predictions
        .iter()
        .filter(|p| p.predicted_reasoning_tokens.is_some())
        .count();
    assert!(
        covered > 100,
        "EMA should warm up well within 200 requests, covered {covered}"
    );
    assert!(
        covered < 200,
        "cold start must leave some arrivals uncovered"
    );
    // And a from-scratch EMA fed the same completions ends in the same
    // state: estimates for a probe request agree.
    let mut replay = ProfileEma::default();
    let mut records = out.records.clone();
    records.sort_by_key(|r| r.completion);
    for r in &records {
        replay.observe(&r.spec);
    }
    let probe = RequestSpec::new(RequestId(10_000), SimTime::ZERO, 64, 1, 1).with_dataset("GPQA");
    let replayed = replay.estimate(&probe).reasoning_tokens;
    assert!(replayed.is_some(), "replayed EMA must be warm");
}

#[test]
fn oracle_speculatively_demotes_only_oversized_reasoning() {
    // One giant above the demotion threshold and a stream of small ones:
    // under the oracle the giant starts demoted, so small requests arriving
    // later still get the high-priority queue and finish first even though
    // the giant arrived first.
    let mut requests = vec![RequestSpec::new(RequestId(0), SimTime::ZERO, 64, 6000, 10)];
    for i in 1..6 {
        requests.push(RequestSpec::new(
            RequestId(i),
            SimTime::from_secs_f64(0.5 * i as f64),
            64,
            300,
            10,
        ));
    }
    let trace = Trace::from_requests(requests);
    let mut config = SimConfig::characterization(
        SchedPolicy::pascal(PascalConfig::default()),
        pascal::core::KvCapacityMode::Physical,
    );
    config.max_batch = 2; // force queueing so priority classes matter
    let reactive = run_simulation(&trace, &config);
    let oracle = run_simulation(
        &trace,
        &config.clone().with_predictor(PredictorKind::Oracle),
    );
    let small_finish = |out: &pascal::core::SimOutput| {
        out.records
            .iter()
            .filter(|r| r.spec.reasoning_tokens < 1000)
            .map(|r| r.completion)
            .max()
            .expect("small requests exist")
    };
    assert!(
        small_finish(&oracle) <= small_finish(&reactive),
        "speculative demotion must not delay small requests"
    );
    assert_eq!(oracle.records.len(), 6);
}

#[test]
fn chat_mix_is_served_under_every_predictor() {
    let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::arena_hard()))
        .arrivals(ArrivalProcess::poisson(4.0))
        .count(80)
        .seed(21)
        .build();
    for kind in PredictorKind::ALL {
        let out = run_variant(&trace, Some(kind));
        assert_eq!(out.records.len(), 80);
        assert!(out.records.iter().all(|r| r.ttft().is_some()));
    }
}
