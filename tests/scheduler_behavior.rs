//! Cross-crate behavioural checks of the three schedulers — the §III
//! characterization claims, end to end through the real engine.

use pascal::core::experiments::common::{characterization_capacity, run_characterization};
use pascal::core::{run_simulation, KvCapacityMode, SimConfig, SimOutput};
use pascal::sched::{PascalConfig, SchedPolicy};
use pascal::sim::SimTime;
use pascal::workload::{fig04_reasoning_trace, RequestId, RequestSpec, Trace};

/// Six long reasoning requests saturate memory; a short one arrives late.
fn hol_trace() -> Trace {
    let mut requests: Vec<RequestSpec> = (0..6)
        .map(|i| {
            RequestSpec::new(
                RequestId(i),
                SimTime::from_secs_f64(0.2 * i as f64),
                64,
                600,
                0,
            )
        })
        .collect();
    requests.push(RequestSpec::new(
        RequestId(6),
        SimTime::from_secs_f64(15.0),
        64,
        100,
        0,
    ));
    Trace::from_requests(requests)
}

/// Memory for ~2080 KV tokens: the six long requests exhaust it mid-run.
fn tight_capacity() -> KvCapacityMode {
    let geometry =
        SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited).geometry();
    KvCapacityMode::Bytes(geometry.bytes_for_tokens(2080))
}

fn completions(out: &SimOutput) -> Vec<f64> {
    out.records
        .iter()
        .map(|r| r.completion.as_secs_f64())
        .collect()
}

#[test]
fn fcfs_blocks_the_short_newcomer_behind_long_requests() {
    let config = SimConfig::characterization(SchedPolicy::Fcfs, tight_capacity());
    let out = run_simulation(&hol_trace(), &config);
    let done = completions(&out);
    let short = &out.records[6];
    let earliest_long = done[..6].iter().copied().fold(f64::MAX, f64::min);
    assert!(
        short.blocked.as_secs_f64() > 1.0,
        "the newcomer must queue for memory, waited only {:.2}s",
        short.blocked.as_secs_f64()
    );
    assert!(
        short.completion.as_secs_f64() > earliest_long,
        "FCFS only admits the newcomer once a long request finishes"
    );
}

#[test]
fn round_robin_lets_the_short_newcomer_through() {
    let config =
        SimConfig::characterization(SchedPolicy::RoundRobin { quantum: 500 }, tight_capacity());
    let out = run_simulation(&hol_trace(), &config);
    let done = completions(&out);
    let short_done = done[6];
    let longs_after_short = done[..6].iter().filter(|d| **d > short_done).count();
    assert!(
        longs_after_short >= 4,
        "RR should finish the 100-token request before most long ones \
         (only {longs_after_short} finished after it)"
    );
    let preemptions: u32 = out.records[..6].iter().map(|r| r.num_preemptions).sum();
    assert!(preemptions > 0, "RR pays with preemptions of long requests");
}

#[test]
fn fig4_shape_fcfs_hurts_short_rr_hurts_long() {
    let trace = fig04_reasoning_trace(200, 3.0, 77);
    let (oracle, capacity) = characterization_capacity(&trace, 0.5);
    let fcfs = run_characterization(&trace, SchedPolicy::Fcfs, capacity);
    let rr = run_characterization(&trace, SchedPolicy::RoundRobin { quantum: 500 }, capacity);

    let mean_reasoning = |out: &SimOutput, tokens: u32| {
        let xs: Vec<f64> = out
            .records
            .iter()
            .filter(|r| r.spec.reasoning_tokens == tokens)
            .filter_map(|r| r.reasoning_latency().map(|d| d.as_secs_f64()))
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };

    // Short requests: FCFS degrades them far more than RR does (Fig. 4).
    let short_fcfs = mean_reasoning(&fcfs, 128) / mean_reasoning(&oracle, 128);
    let short_rr = mean_reasoning(&rr, 128) / mean_reasoning(&oracle, 128);
    assert!(
        short_fcfs > short_rr * 1.5,
        "short requests: FCFS {short_fcfs:.2}x should exceed RR {short_rr:.2}x"
    );

    // Long requests: RR's quantum preemptions dominate (Fig. 4 at 2048).
    let long_rr = mean_reasoning(&rr, 2048) / mean_reasoning(&oracle, 2048);
    assert!(
        long_rr > 1.2,
        "long requests under RR should degrade, got {long_rr:.2}x"
    );
}

#[test]
fn pascal_prioritizes_reasoning_over_answering() {
    // A warm answering request already owns most of the memory when a fresh
    // reasoning request arrives; memory fits only one of them. PASCAL must
    // preempt the answering request, FCFS must not.
    let trace = Trace::from_requests(vec![
        RequestSpec::warm(RequestId(0), SimTime::ZERO, 1200, 200),
        RequestSpec::new(RequestId(1), SimTime::from_secs_f64(2.0), 64, 300, 0),
    ]);
    let geometry =
        SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited).geometry();
    let capacity = KvCapacityMode::Bytes(geometry.bytes_for_tokens(1440));

    let pascal_out = run_simulation(
        &trace,
        &SimConfig::characterization(SchedPolicy::pascal(PascalConfig::default()), capacity),
    );
    let answering = &pascal_out.records[0];
    let reasoning = &pascal_out.records[1];
    assert!(
        reasoning.completion < answering.completion,
        "PASCAL: the reasoning request should cut ahead of the answering one"
    );
    assert!(
        answering.num_preemptions > 0,
        "PASCAL: the answering request should have been preempted"
    );

    let fcfs_out = run_simulation(
        &trace,
        &SimConfig::characterization(SchedPolicy::Fcfs, capacity),
    );
    assert!(
        fcfs_out.records[1].completion > fcfs_out.records[0].completion,
        "FCFS: the reasoning request queues behind the earlier answering one"
    );
}
