//! Determinism: the whole stack — trace synthesis, engine, metrics — is a
//! pure function of (seed, config).

use pascal::core::experiments::common::{main_policies, run_cluster};
use pascal::core::{run_simulation, AdmissionMode, SimConfig};
use pascal::predict::PredictorKind;
use pascal::sched::{PascalConfig, SchedPolicy};
use pascal::workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};

fn small_trace(seed: u64) -> pascal::workload::Trace {
    TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
        .arrivals(ArrivalProcess::poisson(6.0))
        .count(120)
        .seed(seed)
        .build()
}

#[test]
fn identical_inputs_give_identical_outputs() {
    let trace = small_trace(17);
    let config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
    let a = run_simulation(&trace, &config);
    let b = run_simulation(&trace, &config);
    assert_eq!(a.records, b.records, "bit-identical reruns");
    assert_eq!(a.peak_gpu_kv_bytes, b.peak_gpu_kv_bytes);
    assert_eq!(a.makespan, b.makespan);
}

#[test]
fn different_seeds_give_different_traces_and_outputs() {
    let config = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
    let a = run_simulation(&small_trace(1), &config);
    let b = run_simulation(&small_trace(2), &config);
    assert_ne!(a.records, b.records);
}

#[test]
fn every_policy_is_deterministic() {
    let trace = small_trace(23);
    for policy in main_policies() {
        let a = run_cluster(&trace, policy);
        let b = run_cluster(&trace, policy);
        assert_eq!(a.records, b.records, "{} not deterministic", policy.name());
    }
}

#[test]
fn predictive_controllers_are_deterministic() {
    // The new migration and admission controllers carry decision state
    // (reservation ledger, tallies, rejection log); identical inputs must
    // replay byte-identically — including the per-migration outcome fields
    // (stall, predicted-vs-actual remaining service) and the rejections.
    let trace = small_trace(41);
    let config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()))
        .with_predictor(PredictorKind::ProfileEma)
        .with_predictive_migration(500.0)
        .with_admission(AdmissionMode::predictive());
    let a = run_simulation(&trace, &config);
    let b = run_simulation(&trace, &config);
    assert_eq!(a.records, b.records, "records diverged");
    let am: Vec<_> = a.migrations().collect();
    let bm: Vec<_> = b.migrations().collect();
    assert_eq!(am, bm, "migration records diverged");
    assert_eq!(a.migration_outcomes, b.migration_outcomes);
    assert_eq!(a.admission, b.admission);
    assert_eq!(a.rejections, b.rejections);
    assert_eq!(
        format!("{:?}{:?}", a.migration_outcomes, a.rejections),
        format!("{:?}{:?}", b.migration_outcomes, b.rejections),
        "byte-level divergence"
    );
    assert_eq!(
        a.policy_name,
        "PASCAL(Predictive-EMA, CostAwareMigration)+PredictiveAdmission"
    );
}

#[test]
fn chaos_sweep_is_thread_count_invariant() {
    // Fleet events ride the same calendar queue as everything else, so a
    // sweep over the chaos grid (outage, flash-crowd and diurnal cells,
    // with drains, failures, rebalancing and the autoscaler all firing)
    // must produce the identical report at any worker-pool width.
    use pascal::core::{SweepGrid, SweepRunner};
    let mut grid = SweepGrid::preset("chaos").expect("chaos preset exists");
    grid.count = 60;
    let serial = SweepRunner::new(1).run_grid(&grid);
    let parallel = SweepRunner::new(4).run_grid(&grid);
    assert_eq!(
        serial, parallel,
        "chaos sweep diverged across thread counts"
    );
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "byte-level divergence in the serialized report"
    );
    // The fleet actually did something in every cell: either requests
    // stranded, work rebalanced, or the autoscaler acted.
    assert!(serial.cells.iter().all(|c| c.spec.fleet.is_some()));
}

#[test]
fn empty_fleet_schedule_is_byte_identical_to_static_fleet() {
    // The zero-cost-when-off invariant, one level up: a fleet spec that
    // schedules nothing must leave every output byte untouched.
    let trace = small_trace(17);
    let config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
    let mut with_empty = config.clone();
    with_empty.fleet = Some(pascal::core::FleetSpec::default());
    let a = run_simulation(&trace, &config);
    let b = run_simulation(&trace, &with_empty);
    assert_eq!(a.records, b.records, "records diverged");
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.fleet, b.fleet, "fleet counters must both be zero");
    assert_eq!(
        format!("{:?}", a.records),
        format!("{:?}", b.records),
        "byte-level divergence"
    );
}

#[test]
fn predictive_policies_are_deterministic() {
    // The online predictors carry learned state; identical (trace, config,
    // predictor) inputs must still replay byte-identically — records AND
    // the predicted-vs-actual sample log.
    let trace = small_trace(31);
    for kind in PredictorKind::ALL {
        let config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()))
            .with_predictor(kind);
        let a = run_simulation(&trace, &config);
        let b = run_simulation(&trace, &config);
        assert_eq!(a.records, b.records, "{kind}: records diverged");
        assert_eq!(a.predictions, b.predictions, "{kind}: predictions diverged");
        assert_eq!(
            format!("{:?}", a.records),
            format!("{:?}", b.records),
            "{kind}: byte-level divergence"
        );
        assert_eq!(a.policy_name, format!("PASCAL(Predictive-{kind})"));
    }
}
