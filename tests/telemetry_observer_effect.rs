//! The zero-observer-effect guarantee, end to end: running the same
//! federated cell with every telemetry stream enabled must leave every
//! deterministic output — the printed run tables on stdout and the
//! per-request CSV — byte-identical to a run that never had the flags.
//! Telemetry only ever appends to side buffers; the profiler writes to
//! stderr only.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pascal-observer-{}-{name}", std::process::id()))
}

fn run_cell(extra: &[&str], csv: &Path) -> Output {
    let mut args = vec![
        "run",
        "--count",
        "200",
        "--instances",
        "4",
        "--shards",
        "2",
        "--regions",
        "2",
        "--predictor",
        "ema",
        "--admission",
        "predictive",
        "--rate",
        "high",
        "--seed",
        "7",
        "--csv",
        csv.to_str().expect("utf8 path"),
    ];
    args.extend_from_slice(extra);
    let out = Command::new(env!("CARGO_BIN_EXE_pascal-cli"))
        .args(&args)
        .output()
        .expect("pascal-cli binary runs");
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn full_telemetry_leaves_deterministic_outputs_byte_identical() {
    let csv_off = tmp("off.csv");
    let csv_on = tmp("on.csv");
    let trace = tmp("trace.jsonl");
    let series = tmp("series.csv");

    let off = run_cell(&[], &csv_off);
    let on = run_cell(
        &[
            "--trace-out",
            trace.to_str().expect("utf8 path"),
            "--trace-format",
            "jsonl",
            "--series-out",
            series.to_str().expect("utf8 path"),
            "--series-interval",
            "2.5",
            "--profile",
        ],
        &csv_on,
    );

    assert_eq!(
        String::from_utf8_lossy(&off.stdout),
        String::from_utf8_lossy(&on.stdout),
        "run tables on stdout must be byte-identical with telemetry on"
    );
    let bytes_off = std::fs::read(&csv_off).expect("baseline CSV written");
    let bytes_on = std::fs::read(&csv_on).expect("telemetry CSV written");
    assert_eq!(
        bytes_off, bytes_on,
        "per-request CSVs must be byte-identical with telemetry on"
    );

    // The enabled run actually collected its streams (the guarantee is
    // "no side effects", not "no telemetry") and the profiler reported
    // on stderr only.
    assert!(
        std::fs::metadata(&trace).expect("trace written").len() > 0,
        "trace must not be empty"
    );
    assert!(
        std::fs::metadata(&series).expect("series written").len() > 0,
        "series must not be empty"
    );
    let stderr_on = String::from_utf8_lossy(&on.stderr);
    assert!(
        stderr_on.contains("events/sec"),
        "--profile must report to stderr, got:\n{stderr_on}"
    );

    for f in [&csv_off, &csv_on, &trace, &series] {
        let _ = std::fs::remove_file(f);
    }
}
