//! Trace and series artifacts are machine-readable: the JSONL trace
//! re-parses line by line with the in-tree JSON parser, the Chrome trace
//! is one well-formed trace-event array with plausible monotone
//! timestamps, and the series outputs keep a fixed column schema. All
//! artifacts come from the real CLI so the tests cover the full
//! engine → handle → serializer → file pipeline.

use std::path::{Path, PathBuf};
use std::process::Command;

use pascal::core::sweep::JsonValue;

/// Every event name a trace may contain (the engine's lifecycle edges).
const KNOWN_EVENTS: &[&str] = &[
    "arrival",
    "admission_rejected",
    "admission_spilled",
    "speculative_demotion",
    "demoted",
    "prefill_start",
    "phase_transition",
    "first_answer_token",
    "preempted",
    "offload_done",
    "reload_done",
    "migration_considered",
    "migration_vetoed",
    "migration_aborted",
    "migration_launched",
    "migration_landed",
    "escape_fallback",
    "completed",
    "slo_alert_fired",
    "slo_alert_resolved",
];

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pascal-telemetry-{}-{name}", std::process::id()))
}

/// Runs a small federated, predictive cell with telemetry — busy enough
/// to exercise migrations and phase transitions — writing to `trace` and
/// `series`.
fn traced_run(trace: &Path, format: &str, series: &Path) {
    let out = Command::new(env!("CARGO_BIN_EXE_pascal-cli"))
        .args([
            "run",
            "--count",
            "150",
            "--instances",
            "4",
            "--shards",
            "2",
            "--regions",
            "2",
            "--predictor",
            "ema",
            "--admission",
            "predictive",
            "--rate",
            "high",
            "--trace-out",
            trace.to_str().expect("utf8 path"),
            "--trace-format",
            format,
            "--series-out",
            series.to_str().expect("utf8 path"),
            "--series-interval",
            "5",
        ])
        .output()
        .expect("pascal-cli binary runs");
    assert!(
        out.status.success(),
        "traced run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn jsonl_trace_reparses_line_by_line() {
    let trace = tmp("trace.jsonl");
    let series = tmp("series.csv");
    traced_run(&trace, "jsonl", &series);

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > 300,
        "expected a busy trace, got {} lines",
        lines.len()
    );
    let mut last_t = 0u64;
    let mut saw: Vec<String> = Vec::new();
    for line in &lines {
        let v = JsonValue::parse(line)
            .unwrap_or_else(|e| panic!("line must be valid JSON ({e}): {line}"));
        let t = v
            .get("t_ns")
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("t_ns missing: {line}"));
        assert!(t >= last_t, "trace must be in sim-time order: {line}");
        last_t = t;
        let event = v
            .get("event")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("event missing: {line}"));
        assert!(
            KNOWN_EVENTS.contains(&event),
            "unknown event kind '{event}': {line}"
        );
        if !saw.iter().any(|s| s == event) {
            saw.push(event.to_owned());
        }
        for key in ["region", "shard"] {
            assert!(
                v.get(key).and_then(JsonValue::as_u64).is_some(),
                "{key} missing: {line}"
            );
        }
        // Queue wait is an explicit observable on every prefill launch.
        if event == "prefill_start" {
            assert!(
                v.get("queued_ns").and_then(JsonValue::as_u64).is_some(),
                "prefill_start must carry queued_ns: {line}"
            );
        }
    }
    // The cell is busy enough that the core lifecycle edges all fire.
    for expected in [
        "arrival",
        "prefill_start",
        "phase_transition",
        "first_answer_token",
        "completed",
    ] {
        assert!(
            saw.iter().any(|s| s == expected),
            "trace never saw '{expected}'"
        );
    }
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&series);
}

#[test]
fn chrome_trace_is_one_array_with_monotone_ts() {
    let trace = tmp("trace.chrome.json");
    let series = tmp("series.json");
    traced_run(&trace, "chrome", &series);

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let doc = JsonValue::parse(&text).expect("chrome trace must be one JSON document");
    let events = doc.as_array().expect("chrome trace must be a JSON array");
    assert!(
        events.len() > 300,
        "expected a busy trace, got {}",
        events.len()
    );
    let mut last_ts = f64::NEG_INFINITY;
    for ev in events {
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("ts missing: {ev:?}"));
        assert!(
            ts >= last_ts,
            "ts must be non-decreasing, got {ts} after {last_ts}"
        );
        assert!(ts >= 0.0 && ts.is_finite(), "implausible ts {ts}");
        last_ts = ts;
        assert_eq!(
            ev.get("ph").and_then(JsonValue::as_str),
            Some("i"),
            "lifecycle edges are instant events"
        );
        let name = ev.get("name").and_then(JsonValue::as_str).expect("name");
        assert!(KNOWN_EVENTS.contains(&name), "unknown event '{name}'");
        for key in ["pid", "tid"] {
            assert!(ev.get(key).and_then(JsonValue::as_u64).is_some(), "{key}");
        }
    }

    // The .json series path is also a single well-formed array with the
    // full column schema on every row.
    let text = std::fs::read_to_string(&series).expect("series file written");
    let doc = JsonValue::parse(&text).expect("series JSON parses");
    let rows = doc.as_array().expect("series is an array");
    assert!(!rows.is_empty());
    let mut last_t = f64::NEG_INFINITY;
    for row in rows {
        let t = row.get("t_s").and_then(JsonValue::as_f64).expect("t_s");
        assert!(t >= last_t, "samples must be in time order");
        last_t = t;
        let scope = row.get("scope").and_then(JsonValue::as_str).expect("scope");
        assert!(matches!(scope, "shard" | "region"), "scope '{scope}'");
        // Shard rows carry a shard id; region rows aggregate (null).
        let shard = row.get("shard").expect("shard column present");
        assert_eq!(scope == "region", shard.is_null(), "scope/shard mismatch");
        for key in [
            "queue_depth",
            "active",
            "reasoning",
            "answering",
            "kv_used_bytes",
            "kv_capacity_bytes",
        ] {
            assert!(
                row.get(key).and_then(JsonValue::as_u64).is_some(),
                "{key} missing on {row:?}"
            );
        }
    }
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&series);
}

#[test]
fn series_csv_keeps_a_fixed_rectangular_schema() {
    let trace = tmp("trace2.jsonl");
    let series = tmp("series2.csv");
    traced_run(&trace, "jsonl", &series);

    let text = std::fs::read_to_string(&series).expect("series file written");
    let mut lines = text.lines();
    let header = lines.next().expect("header row");
    assert_eq!(
        header,
        "t_s,scope,region,shard,queue_depth,active,reasoning,answering,\
         kv_used_bytes,kv_capacity_bytes,admission_headroom_bytes,\
         predictor_mean_abs_error,wan_busy_s,slo_burn"
    );
    let columns = header.split(',').count();
    let mut rows = 0usize;
    for line in lines {
        assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
        rows += 1;
    }
    // Each tick emits one row per shard plus one aggregate per region:
    // 2 regions x (2 shards + 1) = 6 rows on this topology.
    assert!(rows >= 6, "expected several ticks of samples, got {rows}");
    assert_eq!(rows % 6, 0, "every tick emits 6 rows on this topology");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&series);
}
