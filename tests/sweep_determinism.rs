//! Sweep determinism: a parallel sweep is result-identical to a
//! sequential one — per-cell results, the JSON serialization and the CSV
//! are all byte-identical at any worker-pool width. This is the property
//! that lets the CI perf-regression gate compare a 4-thread CI run against
//! a baseline generated anywhere.

use pascal::core::sweep::gate::{compare, GateTolerances};
use pascal::core::{SweepGrid, SweepReport, SweepRunner};

/// A small but non-trivial grid: two mixes, three policies plus a
/// predictive variant, 60-request traces.
fn test_grid() -> SweepGrid {
    let mut grid = SweepGrid::preset("ci").expect("ci preset exists");
    grid.count = 60;
    grid.instances = 4;
    grid.base_seed = 7;
    grid
}

#[test]
fn four_thread_sweep_is_byte_identical_to_sequential() {
    let grid = test_grid();
    let sequential = SweepRunner::new(1).run_grid(&grid);
    let parallel = SweepRunner::new(4).run_grid(&grid);

    // Per-cell results are identical, cell by cell…
    assert_eq!(sequential.cells.len(), parallel.cells.len());
    for (seq, par) in sequential.cells.iter().zip(&parallel.cells) {
        assert_eq!(
            seq,
            par,
            "cell {} diverged across thread counts",
            seq.label()
        );
    }
    // …and so are the machine-readable serializations, byte for byte.
    assert_eq!(sequential.to_json(), parallel.to_json());
    assert_eq!(sequential.to_csv(), parallel.to_csv());
}

#[test]
fn sharded_grid_is_byte_identical_at_any_thread_count() {
    // The shard×router×load cross-product: N shards interleave on one
    // global clock inside each cell, and cells run across a worker pool —
    // both layers must stay deterministic for the 4-thread JSON/CSV to
    // match the sequential run byte for byte.
    let mut grid = SweepGrid::preset("sharded").expect("sharded preset exists");
    grid.count = 40;
    grid.base_seed = 7;
    let sequential = SweepRunner::new(1).run_grid(&grid);
    let parallel = SweepRunner::new(4).run_grid(&grid);
    assert_eq!(
        sequential.cells.len(),
        28,
        "shard×router×load×predictor cells"
    );
    for (seq, par) in sequential.cells.iter().zip(&parallel.cells) {
        assert_eq!(
            seq,
            par,
            "cell {} diverged across thread counts",
            seq.label()
        );
    }
    assert_eq!(sequential.to_json(), parallel.to_json());
    assert_eq!(sequential.to_csv(), parallel.to_csv());
    // The multi-shard cells actually sharded (and the anchors did not).
    for cell in &sequential.cells {
        assert_eq!(cell.spec.instances % cell.spec.shards, 0);
        if cell.spec.shards == 1 {
            assert_eq!(cell.metrics.migrations_cross_shard, 0);
        }
    }
}

#[test]
fn sweep_report_survives_a_json_round_trip() {
    let report = SweepRunner::new(4).run_grid(&test_grid());
    let parsed = SweepReport::from_json(&report.to_json()).expect("own JSON parses");
    assert_eq!(parsed, report);
}

#[test]
fn gate_passes_against_a_rerun_and_fails_against_a_perturbed_baseline() {
    let grid = test_grid();
    let baseline = SweepRunner::new(2).run_grid(&grid);
    let current = SweepRunner::new(4).run_grid(&grid);
    let tol = GateTolerances::default();
    assert!(
        compare(&baseline, &current, &tol).passed(),
        "identical grid + seed must gate clean at any thread count"
    );

    // A baseline that claims dramatically better SLO rates must fail.
    let mut perturbed = baseline.clone();
    for cell in &mut perturbed.cells {
        cell.metrics.slo_violation_rate -= 1.0;
    }
    assert!(!compare(&perturbed, &current, &tol).passed());
}

#[test]
fn federated_grid_is_byte_identical_at_any_thread_count() {
    // The region×fed-router cross-product: N regions interleave on one
    // global clock inside each cell (arrivals routed by origin tags, WAN
    // transfers, spills), and cells run across a worker pool — both layers
    // must stay deterministic for the 4-thread JSON/CSV to match the
    // sequential run byte for byte.
    let mut grid = SweepGrid::preset("federated").expect("federated preset exists");
    grid.count = 40;
    grid.base_seed = 7;
    let sequential = SweepRunner::new(1).run_grid(&grid);
    let parallel = SweepRunner::new(4).run_grid(&grid);
    assert_eq!(
        sequential.cells.len(),
        14,
        "region×fed-router×predictor cells"
    );
    for (seq, par) in sequential.cells.iter().zip(&parallel.cells) {
        assert_eq!(
            seq,
            par,
            "cell {} diverged across thread counts",
            seq.label()
        );
    }
    assert_eq!(sequential.to_json(), parallel.to_json());
    assert_eq!(sequential.to_csv(), parallel.to_csv());
    // The one-region anchors never touch the WAN; multi-region cells keep
    // the instances divisible.
    for cell in &sequential.cells {
        assert_eq!(
            cell.spec.instances % (cell.spec.regions * cell.spec.shards),
            0
        );
        if cell.spec.regions == 1 {
            assert_eq!(cell.metrics.migrations_cross_region, 0);
            assert_eq!(cell.metrics.admission_spilled, 0);
        }
    }
}
