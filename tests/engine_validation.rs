//! Simulator validation — our substitute for the paper's real-hardware MAPE
//! check (§V-A): an isolated request's simulated end-to-end latency must
//! match the closed-form model exactly, and derived metrics must decompose.

use pascal::core::{run_simulation, KvCapacityMode, SimConfig};
use pascal::model::validate::isolated_request_latency;
use pascal::sched::SchedPolicy;
use pascal::sim::SimTime;
use pascal::workload::{RequestId, RequestSpec, Trace};

fn single_request_trace(prompt: u32, reasoning: u32, answering: u32) -> Trace {
    Trace::from_requests(vec![RequestSpec::new(
        RequestId(0),
        SimTime::ZERO,
        prompt,
        reasoning,
        answering,
    )])
}

#[test]
fn isolated_request_matches_closed_form_exactly() {
    for (prompt, reasoning, answering) in [(128, 50, 50), (256, 1, 1), (64, 200, 0), (512, 7, 93)] {
        let trace = single_request_trace(prompt, reasoning, answering);
        let config = SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited);
        let out = run_simulation(&trace, &config);
        let record = &out.records[0];

        let expected = isolated_request_latency(
            &config.perf_model(),
            prompt,
            reasoning + answering - 1, // prefill emits the first token
        );
        assert_eq!(
            record.e2e_latency(),
            expected,
            "({prompt},{reasoning},{answering}): engine diverged from closed form"
        );
    }
}

#[test]
fn isolated_request_has_no_wait_time() {
    let trace = single_request_trace(128, 20, 20);
    let config = SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited);
    let out = run_simulation(&trace, &config);
    let r = &out.records[0];
    assert_eq!(r.blocked.as_nanos(), 0);
    assert_eq!(r.preempted.as_nanos(), 0);
    assert_eq!(r.num_preemptions, 0);
    assert_eq!(r.executed, r.e2e_latency());
}

#[test]
fn ttft_decomposes_into_reasoning_latency_plus_ttfat() {
    let trace = single_request_trace(128, 30, 10);
    let config = SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited);
    let out = run_simulation(&trace, &config);
    let r = &out.records[0];
    let ttft = r.ttft().expect("answers");
    let reasoning = r.reasoning_latency().expect("reasons");
    let ttfat = r.ttfat().expect("transitions");
    assert_eq!(ttft, reasoning + ttfat, "Fig. 1(b) decomposition");
    // TTFAT with no contention is a single decode step: a few tens of ms.
    let ms = ttfat.as_millis_f64();
    assert!((10.0..80.0).contains(&ms), "uncontended TTFAT {ms} ms");
}

#[test]
fn warm_request_skips_prefill_compute() {
    let warm = Trace::from_requests(vec![RequestSpec::warm(
        RequestId(0),
        SimTime::ZERO,
        128,
        50,
    )]);
    let config = SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited);
    let out = run_simulation(&warm, &config);
    let r = &out.records[0];
    assert_eq!(r.token_times.len(), 50);
    // All 50 tokens decode; no prefill pass. Per-token ~30-40 ms.
    let per_token = r.e2e_latency().as_secs_f64() / 50.0;
    assert!((0.02..0.06).contains(&per_token), "per-token {per_token}s");
}
