//! CLI argument-error consistency: every flag family's parse failure must
//! exit with status 2 (the conventional usage-error code) and, for
//! enumerated flags, list the valid values on stderr — so scripts can tell
//! a typo (2) from a genuine runtime failure (1) from a regression gate
//! rejection (also 1, with its own FAILED verdict).

use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pascal-cli"))
        .args(args)
        .output()
        .expect("pascal-cli binary runs")
}

/// Asserts a usage error: exit 2, and stderr mentions every needle.
fn assert_usage_error(args: &[&str], needles: &[&str]) {
    let out = cli(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} must exit 2, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    for needle in needles {
        assert!(
            stderr.contains(needle),
            "{args:?} stderr must mention '{needle}', got:\n{stderr}"
        );
    }
}

#[test]
fn help_and_valid_invocations_exit_zero() {
    assert_eq!(cli(&["--help"]).status.code(), Some(0));
    assert_eq!(cli(&[]).status.code(), Some(0));
    let ok = cli(&["capacity", "--dataset", "alpaca"]);
    assert_eq!(ok.status.code(), Some(0));
}

#[test]
fn unknown_commands_and_flags_exit_two() {
    assert_usage_error(&["simulate"], &["unknown command"]);
    assert_usage_error(&["run", "--bogus", "1"], &["unknown flag"]);
    assert_usage_error(&["run", "--dataset"], &["needs a value"]);
}

#[test]
fn dataset_policy_and_rate_errors_exit_two_and_list_values() {
    assert_usage_error(&["run", "--dataset", "nope"], &["nope"]);
    assert_usage_error(&["run", "--policy", "sjf"], &["sjf"]);
    assert_usage_error(&["run", "--rate", "fast"], &["valid: low, medium, high"]);
    assert_usage_error(&["run", "--rate", "-2"], &["must be positive"]);
    assert_usage_error(&["run", "--count", "many"], &["--count"]);
    assert_usage_error(&["run", "--seed", "lucky"], &["--seed"]);
    assert_usage_error(&["run", "--instances", "few"], &["--instances"]);
}

#[test]
fn predictor_and_admission_errors_exit_two_and_list_values() {
    assert_usage_error(
        &["run", "--predictor", "psychic"],
        &["valid: none, oracle, ema, rank, quantile"],
    );
    assert_usage_error(
        &["run", "--admission", "strict"],
        &["valid: none, predictive"],
    );
    assert_usage_error(&["run", "--migration-benefit", "-1"], &["non-negative"]);
    assert_usage_error(
        &["run", "--migration-benefit", "2", "--predictor", "none"],
        &["needs a length predictor"],
    );
    assert_usage_error(
        &["run", "--migration-benefit", "2", "--predictor", "rank"],
        &["absolute length estimates"],
    );
}

#[test]
fn shard_flag_errors_exit_two_and_list_values() {
    assert_usage_error(&["run", "--shards", "0"], &["must be positive"]);
    assert_usage_error(&["run", "--shards", "many"], &["--shards"]);
    assert_usage_error(
        &["run", "--router", "hash"],
        &["valid: rr, least, predictive"],
    );
    assert_usage_error(
        &["run", "--shards", "3", "--instances", "8"],
        &["does not divide"],
    );
}

#[test]
fn federation_flag_errors_exit_two_and_list_values() {
    assert_usage_error(&["run", "--regions", "0"], &["must be positive"]);
    assert_usage_error(&["run", "--regions", "everywhere"], &["--regions"]);
    assert_usage_error(
        &["run", "--fed-router", "anycast"],
        &["valid: static, nearest, predictive"],
    );
    assert_usage_error(
        &["run", "--wan", "dialup"],
        &["valid: metro, regional, continental, transoceanic"],
    );
    assert_usage_error(
        &["run", "--regions", "3", "--instances", "8"],
        &["does not divide"],
    );
}

#[test]
fn telemetry_flag_errors_exit_two_and_list_values() {
    assert_usage_error(
        &["run", "--trace-format", "bogus"],
        &["valid: jsonl, chrome"],
    );
    assert_usage_error(
        &["run", "--series-interval", "soon"],
        &["--series-interval"],
    );
    for bad in ["0", "-3", "inf", "nan"] {
        assert_usage_error(
            &["run", "--series-interval", bad],
            &["must be a positive number"],
        );
    }
    // Half of the series pair alone is a usage error, not silent no-op.
    assert_usage_error(
        &["run", "--series-out", "/tmp/s.csv"],
        &["needs --series-interval"],
    );
    assert_usage_error(&["run", "--series-interval", "5"], &["needs --series-out"]);
}

#[test]
fn fleet_events_errors_exit_two_and_name_the_problem() {
    // A value that is neither a file nor a preset lists the presets.
    assert_usage_error(
        &["run", "--fleet-events", "meteor-strike"],
        &["valid: outage, flash-crowd, diurnal"],
    );
    // A malformed schedule file lists the valid event kinds.
    let dir = std::env::temp_dir();
    let bad_kind = dir.join("pascal_cli_bad_kind.fleet");
    std::fs::write(&bad_kind, "1.0 explode 3\n").expect("write");
    assert_usage_error(
        &["run", "--fleet-events", bad_kind.to_str().unwrap()],
        &[
            "valid event kinds: join, drain, fail, shard-down, shard-up, \
             region-down, region-up",
        ],
    );
    // Events referencing ids outside the topology name the bad id.
    let bad_id = dir.join("pascal_cli_bad_id.fleet");
    std::fs::write(&bad_id, "1.0 fail 99\n").expect("write");
    assert_usage_error(
        &[
            "run",
            "--instances",
            "8",
            "--fleet-events",
            bad_id.to_str().unwrap(),
        ],
        &["instance 99 does not exist"],
    );
    let bad_shard = dir.join("pascal_cli_bad_shard.fleet");
    std::fs::write(&bad_shard, "1.0 shard-down 5\n").expect("write");
    assert_usage_error(
        &[
            "run",
            "--shards",
            "2",
            "--fleet-events",
            bad_shard.to_str().unwrap(),
        ],
        &["shard 5"],
    );
}

#[test]
fn alerts_flag_errors_exit_two_and_name_the_problem() {
    // A value that is neither a file nor a preset lists the presets.
    assert_usage_error(
        &["run", "--alerts", "smoke-signal"],
        &["valid: paging, ticket"],
    );
    // A malformed rule file names the offending line.
    let dir = std::env::temp_dir();
    let bad_rule = dir.join("pascal_cli_bad_rule.alerts");
    std::fs::write(&bad_rule, "budget 0.05\nrule ten 4.0\n").expect("write");
    assert_usage_error(
        &["run", "--alerts", bad_rule.to_str().unwrap()],
        &["line 2"],
    );
    // A rule-less file is rejected: alerting with nothing to evaluate is a
    // misconfiguration, not a quiet no-op.
    let no_rules = dir.join("pascal_cli_no_rules.alerts");
    std::fs::write(&no_rules, "budget 0.1\n").expect("write");
    assert_usage_error(&["run", "--alerts", no_rules.to_str().unwrap()], &["rule"]);
}

#[test]
fn analyze_flag_errors_exit_codes() {
    // Enumerated values exit 2 with the valid list; a missing --trace is
    // a usage error too.
    assert_usage_error(
        &["analyze", "--format", "xml"],
        &["valid: json, csv, waterfall"],
    );
    assert_usage_error(&["analyze", "--top", "many"], &["--top"]);
    assert_usage_error(&["analyze"], &["needs --trace"]);
    assert_usage_error(&["analyze", "--bogus", "1"], &["unknown flag"]);
    // A structurally valid invocation over a missing or malformed trace
    // file is a runtime failure: exit 1, no usage spam.
    let out = cli(&["analyze", "--trace", "/nonexistent/trace.jsonl"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bad = std::env::temp_dir().join("pascal_cli_bad_trace.jsonl");
    std::fs::write(&bad, "not json\n").expect("write");
    let out = cli(&["analyze", "--trace", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("line 1"),
        "parse errors must name the line"
    );
}

#[test]
fn sweep_flag_errors_exit_two_and_list_values() {
    assert_usage_error(
        &["sweep", "--grid", "everything"],
        &["valid: main, predictive, migration, ci, sharded, federated"],
    );
    assert_usage_error(&["sweep", "--grid", ""], &["at least one preset"]);
    assert_usage_error(&["sweep", "--count", "0"], &["must be positive"]);
    assert_usage_error(&["sweep", "--threads", "all"], &["--threads"]);
    assert_usage_error(&["sweep", "--ttft-tol", "-1"], &["non-negative"]);
    assert_usage_error(&["sweep", "--grid", "ci,ci"], &["more than once"]);
}

#[test]
fn runtime_failures_exit_one_not_two() {
    // A structurally valid invocation that fails at runtime (unreadable
    // baseline) is a runtime error, not a usage error.
    let out = cli(&[
        "sweep",
        "--grid",
        "ci",
        "--count",
        "1",
        "--baseline",
        "/nonexistent/baseline.json",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
