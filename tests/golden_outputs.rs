//! Golden byte-identity: the outputs the perf work promised not to change.
//!
//! PR-over-PR engine rewrites (slab request storage, the calendar event
//! queue, scratch-buffer scheduling) are only safe because every output
//! byte is pinned. These tests run the CLI end-to-end at committed seeds —
//! a single-instance run, a sharded run, a federated run, an FCFS run,
//! and the full ci+sharded+federated sweep grid — and require stdout,
//! stderr, per-request CSVs, `sweep.json` and `sweep.csv` to match the
//! fixtures under `tests/golden/` byte for byte.
//!
//! If a change legitimately alters scheduling behaviour, regenerate the
//! fixtures (the commands are the `run_cases()` table below, executed from
//! an empty directory) in the same PR and say so in the PR description.
//! A diff here that you did *not* expect means the change broke the
//! determinism contract, not the fixture.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// A scratch directory unique to this test binary invocation; run
/// commands execute *inside* it so the relative CSV paths echoed on
/// stderr match the fixtures exactly.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pascal-golden-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn assert_bytes_match(fixture: &str, actual: &[u8], context: &str) {
    let expected = fs::read(fixture_dir().join(fixture))
        .unwrap_or_else(|e| panic!("fixture {fixture} must be readable: {e}"));
    assert!(
        expected == actual,
        "{context}: output diverges from tests/golden/{fixture} — the engine's \
         determinism contract is broken (or the fixture needs regenerating in \
         this PR).\n--- expected ---\n{}\n--- actual ---\n{}",
        String::from_utf8_lossy(&expected),
        String::from_utf8_lossy(actual),
    );
}

/// The four committed run scenarios: (name, CLI arguments).
fn run_cases() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            "run_single",
            vec![
                "run",
                "--count",
                "300",
                "--policy",
                "pascal",
                "--rate",
                "high",
                "--seed",
                "7",
                "--csv",
                "run_single.csv",
            ],
        ),
        (
            "run_sharded",
            vec![
                "run",
                "--count",
                "300",
                "--instances",
                "4",
                "--shards",
                "2",
                "--policy",
                "pascal",
                "--router",
                "predictive",
                "--predictor",
                "ema",
                "--admission",
                "predictive",
                "--rate",
                "high",
                "--seed",
                "7",
                "--csv",
                "run_sharded.csv",
            ],
        ),
        (
            "run_federated",
            vec![
                "run",
                "--count",
                "300",
                "--instances",
                "4",
                "--shards",
                "2",
                "--regions",
                "2",
                "--policy",
                "pascal",
                "--predictor",
                "ema",
                "--admission",
                "predictive",
                "--rate",
                "high",
                "--seed",
                "7",
                "--csv",
                "run_federated.csv",
            ],
        ),
        (
            "run_fcfs",
            vec![
                "run",
                "--count",
                "200",
                "--policy",
                "fcfs",
                "--rate",
                "medium",
                "--seed",
                "11",
                "--csv",
                "run_fcfs.csv",
            ],
        ),
    ]
}

#[test]
fn run_outputs_are_byte_identical_to_fixtures() {
    let dir = scratch_dir("runs");
    for (name, args) in run_cases() {
        let out = Command::new(env!("CARGO_BIN_EXE_pascal-cli"))
            .args(&args)
            .current_dir(&dir)
            .output()
            .expect("pascal-cli binary runs");
        assert!(
            out.status.success(),
            "{name} exited {:?}: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        assert_bytes_match(&format!("{name}.txt"), &out.stdout, name);
        assert_bytes_match(&format!("{name}.err"), &out.stderr, name);
        let csv = fs::read(dir.join(format!("{name}.csv"))).expect("per-request CSV written");
        assert_bytes_match(&format!("{name}.csv"), &csv, name);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn empty_fleet_schedule_matches_static_fixtures_byte_for_byte() {
    // The elasticity layer's zero-cost-when-off contract at the CLI level:
    // passing `--fleet-events` with a schedule that contains no events must
    // leave stdout, stderr and the per-request CSV byte-identical to the
    // committed static-fleet fixtures.
    let dir = scratch_dir("empty-fleet");
    let schedule = dir.join("empty.fleet");
    fs::write(&schedule, "# no events\n").expect("schedule written");
    let (name, mut args) = run_cases().swap_remove(0);
    assert_eq!(name, "run_single");
    args.push("--fleet-events");
    let schedule = schedule.to_str().expect("utf-8 path").to_owned();
    args.push(&schedule);
    let out = Command::new(env!("CARGO_BIN_EXE_pascal-cli"))
        .args(&args)
        .current_dir(&dir)
        .output()
        .expect("pascal-cli binary runs");
    assert!(
        out.status.success(),
        "empty-fleet run exited {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_bytes_match("run_single.txt", &out.stdout, "empty fleet schedule");
    assert_bytes_match("run_single.err", &out.stderr, "empty fleet schedule");
    let csv = fs::read(dir.join("run_single.csv")).expect("per-request CSV written");
    assert_bytes_match("run_single.csv", &csv, "empty fleet schedule");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn windowed_parallel_runs_match_sequential_fixtures_byte_for_byte() {
    // The windowed parallel executor's determinism contract at the CLI
    // level: `--run-threads 4` on the committed sharded and federated
    // scenarios must reproduce the sequential fixtures byte for byte —
    // same stdout, same stderr, same per-request CSV. (The fixtures were
    // generated without the flag; equality here IS the claim that thread
    // count is unobservable in every output byte.)
    let dir = scratch_dir("run-threads");
    for (name, mut args) in run_cases() {
        if !matches!(name, "run_sharded" | "run_federated") {
            continue;
        }
        args.extend(["--run-threads", "4"]);
        let out = Command::new(env!("CARGO_BIN_EXE_pascal-cli"))
            .args(&args)
            .current_dir(&dir)
            .output()
            .expect("pascal-cli binary runs");
        assert!(
            out.status.success(),
            "{name} --run-threads 4 exited {:?}: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        assert_bytes_match(&format!("{name}.txt"), &out.stdout, name);
        assert_bytes_match(&format!("{name}.err"), &out.stderr, name);
        let csv = fs::read(dir.join(format!("{name}.csv"))).expect("per-request CSV written");
        assert_bytes_match(&format!("{name}.csv"), &csv, name);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn windowed_parallel_chaos_run_matches_sequential_byte_for_byte() {
    // Same contract under fleet chaos: an outage schedule (drains, a
    // fail-stop, rebalancing, stranding) on a federated topology, executed
    // at --run-threads 1 and 4, must produce identical bytes everywhere.
    // No committed fixture here — the two invocations pin each other.
    let dir = scratch_dir("chaos-threads");
    let base = [
        "run",
        "--count",
        "300",
        "--instances",
        "8",
        "--shards",
        "2",
        "--regions",
        "2",
        "--policy",
        "pascal",
        "--predictor",
        "quantile",
        "--rate",
        "high",
        "--seed",
        "13",
        "--fleet-events",
        "outage",
    ];
    // Both invocations write the same CSV name (read back between runs)
    // so the path echoed on stderr cannot differ for boring reasons.
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_pascal-cli"))
            .args(base)
            .args(["--csv", "chaos.csv", "--run-threads", threads])
            .current_dir(&dir)
            .output()
            .expect("pascal-cli binary runs");
        assert!(
            out.status.success(),
            "chaos run (--run-threads {threads}) exited {:?}: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let csv_bytes = fs::read(dir.join("chaos.csv")).expect("per-request CSV written");
        (out.stdout, out.stderr, csv_bytes)
    };
    let sequential = run("1");
    let windowed = run("4");
    assert!(
        sequential.0 == windowed.0,
        "chaos stdout diverges between --run-threads 1 and 4:\n--- t1 ---\n{}\n--- t4 ---\n{}",
        String::from_utf8_lossy(&sequential.0),
        String::from_utf8_lossy(&windowed.0),
    );
    assert!(
        sequential.1 == windowed.1,
        "chaos stderr diverges between --run-threads 1 and 4"
    );
    assert!(
        sequential.2 == windowed.2,
        "chaos per-request CSV diverges between --run-threads 1 and 4"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sweep_grid_outputs_are_byte_identical_to_fixtures() {
    // Sweep stdout carries wall-clock timings, so only the written report
    // files are pinned. Without --profile the schema-4 throughput field is
    // null and sweep.json is fully deterministic.
    let dir = scratch_dir("sweep");
    let out = Command::new(env!("CARGO_BIN_EXE_pascal-cli"))
        .args([
            "sweep",
            "--grid",
            "ci,sharded,federated",
            "--threads",
            "1",
            "--out",
            "sweepdir",
        ])
        .current_dir(&dir)
        .output()
        .expect("pascal-cli binary runs");
    assert!(
        out.status.success(),
        "sweep exited {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    for file in ["sweep.json", "sweep.csv"] {
        let actual = fs::read(dir.join("sweepdir").join(file)).expect("sweep output written");
        assert_bytes_match(file, &actual, "ci+sharded+federated sweep");
    }
    let _ = fs::remove_dir_all(&dir);
}
