//! Property-based checks of the QoE pipeline against the real engine:
//! whatever the trace, scores stay in [0, 1]; uncontended serving at
//! decode speed faster than the reading pace scores a perfect QoE.
//!
//! The workspace is offline and carries no property-testing crate, so the
//! properties are swept with seeded parameter loops over `SimRng` draws.

use pascal::core::{run_simulation, KvCapacityMode, SimConfig};
use pascal::metrics::{answering_qoe, QoeParams};
use pascal::sched::SchedPolicy;
use pascal::sim::{SimDuration, SimRng, SimTime};
use pascal::workload::{RequestId, RequestSpec, Trace};

#[test]
fn uncontended_serving_scores_perfect_qoe() {
    let trace = Trace::from_requests(vec![RequestSpec::new(
        RequestId(0),
        SimTime::ZERO,
        128,
        20,
        200,
    )]);
    let config = SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited);
    let out = run_simulation(&trace, &config);
    let qoe = answering_qoe(&out.records[0], &QoeParams::paper_eval()).expect("answers");
    assert!(
        (qoe - 1.0).abs() < 1e-9,
        "decode at ~30ms vs 100ms target must score 1.0, got {qoe}"
    );
}

/// Small random traces through the full engine: QoE is always a valid
/// probability in both the evaluation and characterization variants.
#[test]
fn prop_engine_qoe_bounded() {
    let mut meta = SimRng::seed_from(0x0E0E);
    for _ in 0..16 {
        let seed = meta.uniform_range(0, 999);
        let n = meta.uniform_range(2, 11) as usize;
        let reasoning = meta.uniform_range(1, 199) as u32;
        let answering = meta.uniform_range(1, 199) as u32;
        let mut requests = Vec::new();
        for i in 0..n {
            requests.push(RequestSpec::new(
                RequestId(i as u64),
                SimTime::from_secs_f64(0.3 * i as f64),
                64 + (seed % 64) as u32,
                reasoning,
                answering,
            ));
        }
        let trace = Trace::from_requests(requests);
        let config = SimConfig::characterization(
            SchedPolicy::RoundRobin { quantum: 50 },
            KvCapacityMode::FractionOfPhysical(0.05),
        );
        let out = run_simulation(&trace, &config);
        for record in &out.records {
            let eval = answering_qoe(record, &QoeParams::paper_eval()).expect("answers");
            let charac = answering_qoe(record, &QoeParams::characterization()).expect("answers");
            assert!((0.0..=1.0).contains(&eval), "eval QoE {eval} out of [0,1]");
            assert!(
                (0.0..=1.0).contains(&charac),
                "characterization QoE {charac} out of [0,1]"
            );
        }
    }
}

/// Tightening the TPOT target can only lower (or keep) the QoE.
#[test]
fn prop_stricter_tpot_never_raises_qoe() {
    let mut meta = SimRng::seed_from(0x7707);
    for _ in 0..64 {
        let len = meta.uniform_range(5, 59) as usize;
        let mut t = 1.0;
        let times: Vec<SimTime> = (0..len)
            .map(|_| {
                t += 0.01 + meta.uniform_f64() * 0.39;
                SimTime::from_secs_f64(t)
            })
            .collect();
        let loose = pascal::metrics::qoe_of_stream(&times, times[0], SimDuration::from_millis(150));
        let strict = pascal::metrics::qoe_of_stream(&times, times[0], SimDuration::from_millis(60));
        assert!(strict <= loose + 1e-9, "strict {strict} > loose {loose}");
    }
}
