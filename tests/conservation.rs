//! Conservation laws: no request is lost, every token is generated exactly
//! once, records are internally consistent, and wall time decomposes into
//! executed + blocked + preempted.

use pascal::core::experiments::common::{main_policies, pascal_non_adaptive, run_cluster};
use pascal::workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};

#[test]
fn all_requests_complete_with_exact_token_counts() {
    let trace = TraceBuilder::new(DatasetMix::arena_with_reasoning_heavy())
        .arrivals(ArrivalProcess::poisson(10.0))
        .count(200)
        .seed(5)
        .build();
    let mut policies = main_policies();
    policies.push(pascal_non_adaptive());
    for policy in policies {
        let out = run_cluster(&trace, policy);
        assert_eq!(
            out.records.len(),
            trace.requests().len(),
            "{}: lost requests",
            policy.name()
        );
        let mut total_tokens = 0u64;
        for (record, spec) in out.records.iter().zip(trace.requests()) {
            assert_eq!(record.spec, *spec, "{}: spec mismatch", policy.name());
            record.assert_consistent();
            total_tokens += record.token_times.len() as u64;
        }
        assert_eq!(
            total_tokens,
            trace.total_output_tokens(),
            "{}: token conservation",
            policy.name()
        );
    }
}

#[test]
fn wall_time_decomposes_exactly() {
    let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
        .arrivals(ArrivalProcess::poisson(12.0))
        .count(150)
        .seed(8)
        .build();
    for policy in main_policies() {
        let out = run_cluster(&trace, policy);
        for record in &out.records {
            let accounted = record.accounted_time().as_secs_f64();
            let e2e = record.e2e_latency().as_secs_f64();
            assert!(
                (accounted - e2e).abs() < 1e-6,
                "{} {}: accounted {accounted}s != e2e {e2e}s",
                policy.name(),
                record.spec.id
            );
        }
    }
}

#[test]
fn token_streams_are_monotone_and_within_lifetime() {
    let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::gpqa()))
        .arrivals(ArrivalProcess::poisson(8.0))
        .count(100)
        .seed(9)
        .build();
    for policy in main_policies() {
        let out = run_cluster(&trace, policy);
        for r in &out.records {
            assert!(r.token_times.windows(2).all(|w| w[0] <= w[1]));
            assert!(r.token_times[0] >= r.spec.arrival);
            assert!(*r.token_times.last().expect("tokens") <= r.completion);
        }
    }
}
