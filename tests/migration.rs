//! Migration mechanics through the full engine: records are well-formed,
//! adaptive reservation avoids CPU landings, and the fabric serializes.

use pascal::core::experiments::common::{
    evaluation_trace, pascal_no_migration, pascal_non_adaptive, run_cluster,
};
use pascal::core::RateLevel;
use pascal::sched::{PascalConfig, SchedPolicy};
use pascal::workload::{DatasetMix, DatasetProfile};

fn mix() -> DatasetMix {
    DatasetMix::single(DatasetProfile::arena_hard())
}

#[test]
fn migration_records_are_well_formed() {
    let trace = evaluation_trace(&mix(), RateLevel::Medium, 300, 3);
    let out = run_cluster(&trace, SchedPolicy::pascal(PascalConfig::default()));
    let migrations = out.migrations();
    assert!(
        !migrations.is_empty(),
        "PASCAL should migrate at transitions"
    );
    for m in &migrations {
        assert_ne!(m.from_instance, m.to_instance);
        assert!(m.finished > m.started);
        assert!(m.bytes > 0);
        // 100 Gbps fabric: a multi-GB transfer would be a bug.
        assert!(m.bytes < 8_000_000_000, "absurd transfer size {}", m.bytes);
    }
    // Migrated requests visited more than one instance.
    for r in out.records.iter().filter(|r| r.migration.is_some()) {
        assert!(r.instances_visited.len() >= 2);
        let m = r.migration.expect("checked");
        assert_eq!(*r.instances_visited.last().expect("visited"), m.to_instance);
    }
}

#[test]
fn no_migration_variant_never_moves_requests() {
    let trace = evaluation_trace(&mix(), RateLevel::High, 300, 4);
    let out = run_cluster(&trace, pascal_no_migration());
    assert!(out.migrations().is_empty());
    assert!(out.records.iter().all(|r| r.instances_visited.len() == 1));
}

#[test]
fn baselines_never_migrate() {
    let trace = evaluation_trace(&mix(), RateLevel::High, 200, 5);
    for policy in [SchedPolicy::Fcfs, SchedPolicy::round_robin_default()] {
        let out = run_cluster(&trace, policy);
        assert!(out.migrations().is_empty(), "{} migrated", policy.name());
    }
}

#[test]
fn non_adaptive_migrates_more_than_adaptive() {
    // The adaptive override (plus destination reservation) suppresses
    // migrations into full instances; NonAdaptive fires them all.
    let trace = evaluation_trace(&mix(), RateLevel::High, 600, 6);
    let adaptive = run_cluster(&trace, SchedPolicy::pascal(PascalConfig::default()));
    let blind = run_cluster(&trace, pascal_non_adaptive());
    assert!(
        blind.migrations().len() >= adaptive.migrations().len(),
        "NonAdaptive ({}) should migrate at least as much as adaptive ({})",
        blind.migrations().len(),
        adaptive.migrations().len()
    );
}

#[test]
fn transfer_latency_includes_fabric_queueing() {
    let trace = evaluation_trace(&mix(), RateLevel::High, 600, 7);
    let out = run_cluster(&trace, SchedPolicy::pascal(PascalConfig::default()));
    let migrations = out.migrations();
    // Every latency at least covers the raw link time for its bytes.
    let link = pascal::model::LinkSpec::fabric_100gbps();
    for m in &migrations {
        assert!(
            m.latency() >= link.transfer_time(m.bytes),
            "latency below raw link time"
        );
    }
}
