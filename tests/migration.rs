//! Migration mechanics through the full engine: records are well-formed,
//! adaptive reservation avoids CPU landings, and the fabric serializes.

use pascal::core::experiments::common::{
    evaluation_trace, pascal_no_migration, pascal_non_adaptive, run_cluster,
};
use pascal::core::{run_simulation, RateLevel, SimConfig};
use pascal::predict::PredictorKind;
use pascal::sched::{PascalConfig, SchedPolicy};
use pascal::workload::{DatasetMix, DatasetProfile};

fn mix() -> DatasetMix {
    DatasetMix::single(DatasetProfile::arena_hard())
}

#[test]
fn migration_records_are_well_formed() {
    let trace = evaluation_trace(&mix(), RateLevel::Medium, 300, 3);
    let out = run_cluster(&trace, SchedPolicy::pascal(PascalConfig::default()));
    let migrations: Vec<_> = out.migrations().collect();
    assert!(
        !migrations.is_empty(),
        "PASCAL should migrate at transitions"
    );
    for m in &migrations {
        assert_ne!(m.from_instance, m.to_instance);
        assert!(m.finished > m.started);
        assert!(m.bytes > 0);
        // 100 Gbps fabric: a multi-GB transfer would be a bug.
        assert!(m.bytes < 8_000_000_000, "absurd transfer size {}", m.bytes);
    }
    // Migrated requests visited more than one instance.
    for r in out.records.iter().filter(|r| r.migration.is_some()) {
        assert!(r.instances_visited.len() >= 2);
        let m = r.migration.expect("checked");
        assert_eq!(*r.instances_visited.last().expect("visited"), m.to_instance);
    }
}

#[test]
fn no_migration_variant_never_moves_requests() {
    let trace = evaluation_trace(&mix(), RateLevel::High, 300, 4);
    let out = run_cluster(&trace, pascal_no_migration());
    assert_eq!(out.migrations().count(), 0);
    assert!(out.records.iter().all(|r| r.instances_visited.len() == 1));
}

#[test]
fn baselines_never_migrate() {
    let trace = evaluation_trace(&mix(), RateLevel::High, 200, 5);
    for policy in [SchedPolicy::Fcfs, SchedPolicy::round_robin_default()] {
        let out = run_cluster(&trace, policy);
        assert_eq!(out.migrations().count(), 0, "{} migrated", policy.name());
    }
}

#[test]
fn non_adaptive_migrates_more_than_adaptive() {
    // The adaptive override (plus destination reservation) suppresses
    // migrations into full instances; NonAdaptive fires them all.
    let trace = evaluation_trace(&mix(), RateLevel::High, 600, 6);
    let adaptive = run_cluster(&trace, SchedPolicy::pascal(PascalConfig::default()));
    let blind = run_cluster(&trace, pascal_non_adaptive());
    assert!(
        blind.migrations().count() >= adaptive.migrations().count(),
        "NonAdaptive ({}) should migrate at least as much as adaptive ({})",
        blind.migrations().count(),
        adaptive.migrations().count()
    );
}

#[test]
fn launched_migrations_satisfy_the_cost_benefit_inequality() {
    // Engine-level complement of the sched property test: with Oracle
    // remaining-service predictions and an aggressive benefit ratio, every
    // migration that still rides the fabric must have predicted remaining
    // service ≥ ratio × transfer cost at decision time — requests below
    // the line were vetoed, and some must exist at this ratio.
    let ratio = 1000.0;
    let trace = evaluation_trace(&mix(), RateLevel::High, 300, 8);
    let config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()))
        .with_predictor(PredictorKind::Oracle)
        .with_predictive_migration(ratio);
    let out = run_simulation(&trace, &config);
    assert!(
        out.migration_outcomes.vetoed_by_cost > 0,
        "ratio {ratio} should put some short-answer migrations underwater"
    );
    assert!(out.migration_outcomes.launched > 0);
    let link = pascal::model::LinkSpec::fabric_100gbps();
    let tpot_s = config.target_tpot.as_secs_f64();
    for m in out.migrations() {
        let predicted = m
            .predicted_remaining_tokens
            .expect("oracle always estimates");
        let service_s = predicted * tpot_s;
        let threshold_s = ratio * link.transfer_time(m.bytes).as_secs_f64();
        assert!(
            service_s >= threshold_s * 0.999,
            "underwater migration launched: service {service_s:.3}s < {threshold_s:.3}s"
        );
        // Oracle predictions at the boundary are exact.
        assert_eq!(m.remaining_tokens_error(), Some(0.0));
    }
}

#[test]
fn transfer_latency_includes_fabric_queueing() {
    let trace = evaluation_trace(&mix(), RateLevel::High, 600, 7);
    let out = run_cluster(&trace, SchedPolicy::pascal(PascalConfig::default()));
    // Every latency at least covers the raw link time for its bytes.
    let link = pascal::model::LinkSpec::fabric_100gbps();
    for m in out.migrations() {
        assert!(
            m.latency() >= link.transfer_time(m.bytes),
            "latency below raw link time"
        );
    }
}
